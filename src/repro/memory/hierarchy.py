"""The assembled memory hierarchy.

:class:`MemoryHierarchy` owns, for each of the 16 nodes, split L1
instruction/data caches and a unified L2, plus the shared crossbar and the
distributed memory controllers.  Processor models call :meth:`access` for
every memory reference and receive the reference's latency in nanoseconds.

Coherence is the table-driven MOSI protocol from
:mod:`repro.memory.coherence`.  Each L2 miss is resolved atomically in
time: the requesting controller is stepped through its transient states
(IS_D / IM_D / SM_D / OM_D) while every remote copy observes the
corresponding OTHER_* event, exactly as the protocol table dictates.  A
directory (owner + sharer sets derived from L2 states) accelerates the
snoop lookup; semantics are identical to broadcasting to all nodes.

Two timing couplings make the hierarchy sensitive to small perturbations,
which is the paper's central mechanism:

- **per-block busy windows**: two racing requests to one block serialize,
  so whichever arrives second -- a timing-dependent outcome -- pays extra
  latency (this is how lock hand-offs become order-dependent); and
- **interconnect / DRAM occupancy**: bursts of misses queue.

Finally, the **perturbation hook** (paper section 3.3) adds a uniformly
distributed pseudo-random 0..max_ns to every L2 miss.  With a fresh seed
per run this creates the space of possible executions the methodology
samples from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.isa import (
    SOURCE_NAMES,
    SRC_CACHE,
    SRC_L1,
    SRC_L2,
    SRC_MEMORY,
    SRC_UPGRADE,
)
from repro.memory.cache import CacheLine, SetAssociativeCache
from repro.memory.coherence import (
    ACT_DEALLOCATE,
    ACT_HIT,
    ACT_ISSUE_PUTM,
    ACT_WRITEBACK,
    EV_LOAD,
    EV_OTHER_GETM,
    EV_OTHER_GETS,
    EV_OWN_ACK,
    EV_REPLACEMENT,
    EV_STORE,
    EV_WB_ACK,
    CoherenceError,
    N_EVENTS,
    PROTOCOL_HAS_E,
    PROTOCOL_OWNER_MASKS,
    PROTOCOL_OWNER_STATES,
    READABLE_MASK,
    ST_E,
    ST_M,
    ST_RO,
    ST_RW,
    ST_S,
    event_column,
    illegal_transition,
    int_table_for,
)
from repro.memory.dram import MemoryController
from repro.memory.interconnect import Crossbar
from repro.sim.rng import RandomStream

#: L1 line permission tags (the L1s are not coherence points; they mirror
#: a subset of the local L2 state under inclusion).  The string forms are
#: the boundary/API constants; lines store the integer codes.
L1_READ_ONLY = "RO"
L1_READ_WRITE = "RW"
L1_RO_CODE = ST_RO
L1_RW_CODE = ST_RW

#: hot-path constants: lines store coherence state as the integer code
_M = ST_M
_S = ST_S
_E = ST_E
_RO = ST_RO
_RW = ST_RW

#: shared empty sharer set (read-only uses only; avoids a set() per miss)
_EMPTY_SET: frozenset = frozenset()

#: access outcomes are plain ``(latency_ns, source)`` tuples on the hot
#: path; this alias documents intent (``source`` is a repro.isa SRC_* code)
AccessResult = tuple


@dataclass(slots=True)
class HierarchyStats:
    """Aggregate counters across the whole hierarchy."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    cache_to_cache: int = 0
    memory_fetches: int = 0
    upgrades: int = 0
    writebacks: int = 0
    perturbation_total_ns: int = 0
    block_race_stalls: int = 0

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses per L2 access."""
        l2_accesses = self.l2_hits + self.l2_misses
        if l2_accesses == 0:
            return 0.0
        return self.l2_misses / l2_accesses


class MemoryHierarchy:
    """Caches, coherence, interconnect and DRAM for the whole machine."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        n = config.n_cpus
        self.l1i = [SetAssociativeCache(config.l1i, name=f"l1i{i}") for i in range(n)]
        self.l1d = [SetAssociativeCache(config.l1d, name=f"l1d{i}") for i in range(n)]
        self.l2 = [SetAssociativeCache(config.l2, name=f"l2_{i}") for i in range(n)]
        self.crossbar = Crossbar(config.memory, n)
        self.dram = MemoryController(config.memory, n)
        self.stats = HierarchyStats()
        # Table-driven protocol selection (paper 3.2.3: the memory
        # simulator supports a range of protocols as transition tables).
        self.protocol = config.coherence_protocol
        self._owner_states = PROTOCOL_OWNER_STATES[self.protocol]
        self._has_exclusive = PROTOCOL_HAS_E[self.protocol]
        # Integer-coded protocol views.  Lines store their state as an
        # int code, so every transition lookup on the miss legs is a flat
        # list index (``state_code * N_EVENTS + event_code``) yielding
        # ``(action_flags, next_code)``; action checks are one bit-AND.
        # ``_demand`` is (load_column, store_column): state code ->
        # (is_hit, next_code), the two per-access-hottest columns
        # extracted for direct indexing.
        self._int_table = int_table_for(self.protocol)
        self._demand = tuple(
            [
                entry if entry is None else (entry[0] & ACT_HIT, entry[1])
                for entry in event_column(self._int_table, event)
            ]
            for event in (EV_LOAD, EV_STORE)
        )
        self._owner_mask = PROTOCOL_OWNER_MASKS[self.protocol]
        # Directory derived from L2 states: block -> owner node (M or O
        # copy), block -> set of nodes with any readable copy.
        self._owner: dict[int, int] = {}
        self._sharers: dict[int, set[int]] = {}
        # Per-block transaction busy windows (timing-dependent races).
        self._block_busy: dict[int, int] = {}
        # Functional (timing-free) mode marker.  Toggled by the
        # fast-forward engine (repro.core.ffwd) around a warm-up leg;
        # always False on the timed path.  The functional access path
        # uses its own *_f protocol plumbing, so this is a mode flag for
        # introspection/assertions, not a hot-path branch.
        self._functional = False
        # Perturbation stream; reseeded per run by the runner.
        self._perturb = RandomStream(seed=0)
        self._perturb_max = config.perturbation.max_ns
        # Hot-path precomputation: block geometry and the constant
        # L1-hit results (the fast path returns these cached tuples
        # instead of allocating a result object per access).
        self._block_bytes = config.l1d.block_bytes
        self._cache_provide_ns = config.memory.cache_provide_ns
        self._fetch_cap_ns = config.memory.memory_fetch_ns
        self._l1d_hit = (config.l1d.hit_latency_ns, SRC_L1)
        self._l1i_hit = (config.l1i.hit_latency_ns, SRC_L1)
        self._miss_base_d = config.l1d.hit_latency_ns + config.l2.hit_latency_ns
        self._miss_base_i = config.l1i.hit_latency_ns + config.l2.hit_latency_ns
        # Probe-bus hook: fired per global (L2-miss) transaction when a
        # cache probe is attached; None costs one check off the fast path.
        self._probe_cache = None

    # ------------------------------------------------------------------
    # Run setup
    # ------------------------------------------------------------------
    def seed_perturbation(self, seed: int) -> None:
        """Install the per-run perturbation stream (paper 3.3)."""
        self._perturb = RandomStream(seed=seed)

    def set_cache_probe(self, callback) -> None:
        """Install (or clear, with None) the cache-event probe hook.

        The callback fires once per global coherence transaction (L2
        miss/upgrade) as ``callback(now, node, block, source, latency_ns,
        is_write)``.  L1/L2 hits are not probed: they are the fast path,
        and the interesting coherence behaviour is in the misses.
        """
        self._probe_cache = callback

    def set_functional(self, enabled: bool) -> None:
        """Enter or leave functional (timing-free) mode.

        In functional mode :meth:`access_functional` drives the same
        L1/L2/directory state transitions as :meth:`access` but the
        crossbar and DRAM occupancy models are never consulted or
        mutated, the per-block busy windows are not read or written, and
        the perturbation stream is not drawn from.  The timed
        :meth:`access` path does not depend on the flag at all.
        """
        self._functional = bool(enabled)

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------
    def access(
        self,
        node: int,
        address: int,
        is_write: bool,
        now: int,
        is_instruction: bool = False,
    ) -> tuple:
        """Perform one memory reference.

        Returns ``(latency_ns, source)`` where ``source`` is a
        :mod:`repro.isa` ``SRC_*`` code.  The L1-hit fast path returns a
        cached constant tuple: no allocation per access.
        """
        stats = self.stats
        stats.accesses += 1
        block = address // self._block_bytes
        l1 = self.l1i[node] if is_instruction else self.l1d[node]

        # Inlined l1.lookup(block): this runs once per simulated memory
        # reference, and the call (plus its kwarg defaults) is measurable.
        # Semantics are identical -- hit/miss counters and the MRU move
        # fire exactly as SetAssociativeCache.lookup would.
        lines = l1._sets[block % l1.n_sets]
        line = lines.get(block)
        if line is None:
            l1.stats.misses += 1
        else:
            del lines[block]
            lines[block] = line
            l1.stats.hits += 1
            if not is_write or line.code == _RW:
                if is_write:
                    line.dirty = True
                stats.l1_hits += 1
                return self._l1i_hit if is_instruction else self._l1d_hit

        # L1 miss (or write to a read-only L1 line): go to the local L2.
        # The L2 lookup and demand transition are inlined here (one call
        # per L1 miss is measurable); counters and LRU behave exactly as
        # SetAssociativeCache.lookup would.
        latency = self._miss_base_i if is_instruction else self._miss_base_d
        l2 = self.l2[node]
        l2_lines = l2._sets[block % l2.n_sets]
        l2_line = l2_lines.get(block)
        if l2_line is not None:
            del l2_lines[block]
            l2_lines[block] = l2_line
            l2.stats.hits += 1
            entry = self._demand[is_write][l2_line.code]
            if entry is None:
                raise illegal_transition(
                    l2_line.code, EV_STORE if is_write else EV_LOAD
                )
            hit, next_code = entry
            l2_line.code = next_code
            if hit:
                if is_write:
                    l2_line.dirty = True
                self.stats.l2_hits += 1
                source = SRC_L2
                writable = next_code == _M
            else:
                # Upgrade path: the line stays resident in a transient
                # state while the GetM is outstanding; OWN_ACK lands the
                # requestor's copy in M, so the L1 fill is writable.
                miss_latency, source = self._global_transaction(
                    node, block, is_write, now + latency, upgrading=l2_line
                )
                latency += miss_latency
                writable = True
        else:
            # Full miss from I (the table maps it to IS_D/IM_D + a
            # request).  A GetM fills the L2 in M (writable); a GetS
            # fills S or E, neither of which grants L1 write permission
            # (an E copy upgrades through the L2, not in the L1).
            l2.stats.misses += 1
            miss_latency, source = self._global_transaction(
                node, block, is_write, now + latency, upgrading=None
            )
            latency += miss_latency
            writable = is_write

        # Fill the L1 under inclusion (l1.fill inlined; runs once per L1
        # miss).  A write-permission change replaces any stale read-only
        # copy -- ``line``, still at MRU from the lookup above, is
        # refreshed in place.  L1 write permission requires the L2 copy
        # to be M specifically.  A dirty L1 victim folds into the L2 copy
        # (inclusion guarantees the L2 holds the block in M, which is
        # already dirty), so the victim is recycled for the incoming
        # block.  The global transaction never touches this node's L1
        # copy of ``block``, so ``lines``/``line`` remain valid.
        code = _RW if writable else _RO
        if line is not None:
            line.code = code
            line.dirty = is_write
        else:
            if len(lines) >= l1.associativity:
                line = lines.pop(next(iter(lines)))
                l1.stats.evictions += 1
                line.block = block
                line.code = code
                line.dirty = is_write
                lines[block] = line
            else:
                lines[block] = CacheLine(block, code, is_write)
        return (latency, source)

    def access_functional(
        self,
        node: int,
        address: int,
        is_write: bool,
        now: int,
        is_instruction: bool = False,
    ) -> None:
        """Perform one memory reference's *state* effects without timing.

        Mirrors :meth:`access` transition-for-transition -- identical L1
        lookup/fill (including MRU moves and eviction choices), identical
        L2 demand transitions, and identical directory/coherence
        resolution for misses -- but computes no latency: the block-race
        busy windows, the perturbation draw, and the crossbar/DRAM
        occupancy models are all skipped.  ``now`` is the functional
        clock, used only to timestamp probe events.  Returns nothing (a
        functional reference has no latency).
        """
        stats = self.stats
        stats.accesses += 1
        block = address // self._block_bytes
        l1 = self.l1i[node] if is_instruction else self.l1d[node]

        lines = l1._sets[block % l1.n_sets]
        line = lines.get(block)
        if line is None:
            l1.stats.misses += 1
        else:
            del lines[block]
            lines[block] = line
            l1.stats.hits += 1
            if not is_write or line.code == _RW:
                if is_write:
                    line.dirty = True
                stats.l1_hits += 1
                return

        l2 = self.l2[node]
        l2_lines = l2._sets[block % l2.n_sets]
        l2_line = l2_lines.get(block)
        if l2_line is not None:
            del l2_lines[block]
            l2_lines[block] = l2_line
            l2.stats.hits += 1
            entry = self._demand[is_write][l2_line.code]
            if entry is None:
                raise illegal_transition(
                    l2_line.code, EV_STORE if is_write else EV_LOAD
                )
            hit, next_code = entry
            l2_line.code = next_code
            if hit:
                if is_write:
                    l2_line.dirty = True
                stats.l2_hits += 1
                writable = next_code == _M
            else:
                self._functional_transaction(
                    node, block, is_write, now, upgrading=l2_line
                )
                writable = True
        else:
            l2.stats.misses += 1
            self._functional_transaction(node, block, is_write, now, upgrading=None)
            writable = is_write

        # L1 fill: identical to the timed path (see access()).
        code = _RW if writable else _RO
        if line is not None:
            line.code = code
            line.dirty = is_write
        else:
            if len(lines) >= l1.associativity:
                line = lines.pop(next(iter(lines)))
                l1.stats.evictions += 1
                line.block = block
                line.code = code
                line.dirty = is_write
                lines[block] = line
            else:
                lines[block] = CacheLine(block, code, is_write)

    def _functional_transaction(
        self, node: int, block: int, is_write: bool, now: int, upgrading
    ) -> None:
        """Timing-free GetS/GetM: same protocol/directory transitions as
        :meth:`_global_transaction`, no busy window, no perturbation draw,
        no interconnect/DRAM occupancy.  Probe events fire with latency 0.
        Called once per L2 miss/upgrade; kept out of
        :meth:`access_functional` so the hit paths stay compact.
        """
        self.stats.l2_misses += 1
        owner = self._owner.get(block)
        sharers = self._sharers.get(block) or _EMPTY_SET

        if is_write:
            # Mirrors _resolve_getm without the latency legs.
            data_from_cache = False
            if sharers:
                if len(sharers) == 1:
                    # Dominant case: one holder.  Skip the sort allocation
                    # of the general path.  (Bind before applying: the
                    # transition mutates the sharer set.)
                    sharer = next(iter(sharers))
                    if sharer != node:
                        self._apply_remote_f(sharer, block, EV_OTHER_GETM)
                else:
                    # sorted() materializes a copy first, so directory
                    # mutation during the walk is safe; skipping ``node``
                    # inside the loop visits exactly sorted(sharers -
                    # {node}) in the same order, minus the set-difference
                    # allocation.
                    for sharer in sorted(sharers):
                        if sharer != node:
                            self._apply_remote_f(sharer, block, EV_OTHER_GETM)
            if owner is not None and owner != node:
                data_from_cache = True
            if upgrading is not None:
                entry = self._int_table[upgrading.code * N_EVENTS + EV_OWN_ACK]
                if entry is None:
                    raise illegal_transition(upgrading.code, EV_OWN_ACK)
                upgrading.code = entry[1]
                upgrading.dirty = True
                source = SRC_UPGRADE
                self.stats.upgrades += 1
            elif data_from_cache:
                source = SRC_CACHE
                self.stats.cache_to_cache += 1
                self._fill_f(node, block, _M, True)
            else:
                source = SRC_MEMORY
                self.stats.memory_fetches += 1
                self._fill_f(node, block, _M, True)
            self._owner[block] = node
            current = self._sharers.get(block)
            if current is not None:
                # Reuse the surviving set object: every remote copy was
                # just invalidated (or was stale), so after clearing it
                # holds exactly {node} -- same contents as the fresh-set
                # form, without the per-GetM allocation.
                current.clear()
                current.add(node)
            else:
                self._sharers[block] = {node}
        else:
            # Mirrors _resolve_gets without the latency legs.
            if owner is not None and owner != node:
                self._apply_remote_f(owner, block, EV_OTHER_GETS)
                source = SRC_CACHE
                self.stats.cache_to_cache += 1
                supplier = self.l2[owner].peek(block)
                if supplier is None or not (1 << supplier.code) & self._owner_mask:
                    self._owner.pop(block, None)
            else:
                source = SRC_MEMORY
                self.stats.memory_fetches += 1
            exclusive = (
                self._has_exclusive
                and owner is None
                and (not sharers or (len(sharers) == 1 and node in sharers))
            )
            self._fill_f(node, block, _E if exclusive else _S, False)
            current = self._sharers.get(block)
            if current is None:
                self._sharers[block] = {node}
            else:
                current.add(node)
            if exclusive:
                self._owner[block] = node

        if self._probe_cache is not None:
            self._probe_cache(now, node, block, source, 0, is_write)

    def _apply_remote_f(self, node: int, block: int, event_code: int) -> None:
        """Functional twin of :meth:`_apply_remote`: identical state
        transitions through the flat int table; a MESI writeback is
        counted but not sent to the DRAM occupancy model."""
        l2 = self.l2[node]
        lines = l2._sets[block % l2.n_sets]
        line = lines.get(block)
        if line is None:
            return
        entry = self._int_table[line.code * N_EVENTS + event_code]
        if entry is None:
            raise illegal_transition(line.code, event_code)
        flags, next_code = entry
        if flags & ACT_WRITEBACK:
            self.stats.writebacks += 1
            line.dirty = False
        if flags & ACT_DEALLOCATE:
            del lines[block]
            self._drop_l1(node, block)
            self._directory_remove(node, block)
        else:
            line.code = next_code
            self._demote_l1(node, block)

    def _fill_f(self, node: int, block: int, code: int, dirty: bool) -> None:
        """Functional twin of :meth:`_fill` (state passed as its int
        code); identical residency/eviction decisions."""
        cache = self.l2[node]
        lines = cache._sets[block % cache.n_sets]
        existing = lines.get(block)
        if existing is not None:
            existing.code = code
            existing.dirty = dirty
            return
        if len(lines) >= cache.associativity:
            victim = lines.pop(next(iter(lines)))
            cache.stats.evictions += 1
            victim_block = victim.block
            victim_code = victim.code
            # Recycle the victim object for the incoming block (the
            # eviction leg below needs only its old identity/state).
            victim.block = block
            victim.code = code
            victim.dirty = dirty
            lines[block] = victim
            self._handle_l2_eviction_f(node, victim_block, victim_code)
        else:
            lines[block] = CacheLine(block, code, dirty)

    def _handle_l2_eviction_f(self, node: int, victim_block: int, victim_code: int) -> None:
        """Functional twin of :meth:`_handle_l2_eviction`: the PutM leg is
        legality-checked and counted, the DRAM model untouched."""
        entry = self._int_table[victim_code * N_EVENTS + EV_REPLACEMENT]
        if entry is None:
            raise illegal_transition(victim_code, EV_REPLACEMENT)
        flags, next_code = entry
        if flags & ACT_ISSUE_PUTM:
            if self._int_table[next_code * N_EVENTS + EV_WB_ACK] is None:
                raise illegal_transition(next_code, EV_WB_ACK)
            self.stats.writebacks += 1
        self._drop_l1(node, victim_block)
        self._directory_remove(node, victim_block)

    def _global_transaction(
        self,
        node: int,
        block: int,
        is_write: bool,
        now: int,
        upgrading,
    ) -> tuple:
        """Resolve a GetS/GetM on the interconnect.

        ``upgrading`` is the requestor's resident L2 line when the request
        is an upgrade (SM_D/OM_D), else None.
        """
        self.stats.l2_misses += 1
        latency = 0

        # Serialize racing transactions to the same block.  The stall is
        # capped at one transaction length: CPUs are interleaved at slice
        # granularity, so an uncapped wait could charge cross-slice
        # timestamp skew as contention.
        busy_until = self._block_busy.get(block, 0)
        if busy_until > now:
            stall = min(busy_until - now, self._fetch_cap_ns)
            latency += stall
            now += stall
            self.stats.block_race_stalls += 1

        # Paper 3.3: uniformly distributed pseudo-random 0..max on every
        # L2 miss.  This is the injected variability.  Bit-identical to
        # ``self._perturb.randint(0, self._perturb_max)``.
        if self._perturb_max > 0:
            jitter = self._perturb.next_u64() % (self._perturb_max + 1)
            latency += jitter
            self.stats.perturbation_total_ns += jitter

        owner = self._owner.get(block)
        sharers = self._sharers.get(block) or _EMPTY_SET

        if is_write:
            resolved, source = self._resolve_getm(
                node, block, now + latency, owner, sharers, upgrading
            )
        else:
            resolved, source = self._resolve_gets(node, block, now + latency, owner, sharers)
        latency += resolved

        self._block_busy[block] = now + latency
        if self._probe_cache is not None:
            self._probe_cache(now, node, block, source, latency, is_write)
        return (latency, source)

    def _resolve_gets(
        self, node: int, block: int, now: int, owner: int | None, sharers: set[int]
    ) -> tuple:
        """Resolve a load miss: data from the owner cache or from memory."""
        if owner is not None and owner != node:
            # Owner observes OTHER_GETS: M -> O (MOSI/MOESI) or M -> S
            # with writeback (MESI); E -> S.  It supplies the data.
            self._apply_remote(owner, block, EV_OTHER_GETS)
            latency = self.crossbar.round_trip(now) + self._cache_provide_ns
            source = SRC_CACHE
            self.stats.cache_to_cache += 1
            # The supplier may have dropped out of the owner states
            # (MESI M->S): ownership reverts to memory.
            supplier = self.l2[owner].peek(block)
            if supplier is None or not (1 << supplier.code) & self._owner_mask:
                self._owner.pop(block, None)
        else:
            latency = self.crossbar.round_trip(now) + self.dram.read(block, now)
            source = SRC_MEMORY
            self.stats.memory_fetches += 1
        # Requestor: IS_D + OWN_DATA -> S; with no other copy and an
        # E-capable protocol, IS_D + OWN_DATA_EXCL -> E.
        exclusive = (
            self._has_exclusive
            and owner is None
            and (not sharers or (len(sharers) == 1 and node in sharers))
        )
        self._fill(node, block, _E if exclusive else _S, False)
        current = self._sharers.get(block)
        if current is None:
            self._sharers[block] = {node}
        else:
            current.add(node)
        if exclusive:
            self._owner[block] = node
        return (latency, source)

    def _resolve_getm(
        self,
        node: int,
        block: int,
        now: int,
        owner: int | None,
        sharers: set[int],
        upgrading,
    ) -> tuple:
        """Resolve a store miss/upgrade: invalidate all other copies."""
        # Remote copies observe OTHER_GETM.
        data_from_cache = False
        if sharers:
            if len(sharers) == 1:
                # Dominant case: one holder.  Skip the sort allocation of
                # the general path.  (Bind before applying: the transition
                # mutates the sharer set.)
                sharer = next(iter(sharers))
                if sharer != node:
                    self._apply_remote(sharer, block, EV_OTHER_GETM)
            else:
                # sorted() materializes a copy first, so directory mutation
                # during the walk is safe; skipping ``node`` inside the
                # loop visits exactly sorted(sharers - {node}) in the same
                # order, minus the set-difference allocation.
                for sharer in sorted(sharers):
                    if sharer != node:
                        self._apply_remote(sharer, block, EV_OTHER_GETM)
        if owner is not None and owner != node:
            data_from_cache = True

        if upgrading is not None:
            # SM_D/OM_D + OWN_ACK -> M.  Invalidation round trip only; the
            # requestor already holds the data.
            entry = self._int_table[upgrading.code * N_EVENTS + EV_OWN_ACK]
            if entry is None:
                raise illegal_transition(upgrading.code, EV_OWN_ACK)
            upgrading.code = entry[1]
            upgrading.dirty = True
            latency = self.crossbar.round_trip(now)
            source = SRC_UPGRADE
            self.stats.upgrades += 1
        elif data_from_cache:
            latency = self.crossbar.round_trip(now) + self._cache_provide_ns
            source = SRC_CACHE
            self.stats.cache_to_cache += 1
            self._fill(node, block, _M, True)
        else:
            latency = self.crossbar.round_trip(now) + self.dram.read(block, now)
            source = SRC_MEMORY
            self.stats.memory_fetches += 1
            self._fill(node, block, _M, True)

        # Directory: the requestor is now the sole owner.  Every remote
        # copy was just invalidated above (remote stable states all
        # deallocate on OTHER_GETM), so a surviving sharer-set object
        # holds at most {node}: reuse it instead of allocating a fresh
        # one-element set per GetM.
        self._owner[block] = node
        current = self._sharers.get(block)
        if current is not None:
            current.clear()
            current.add(node)
        else:
            self._sharers[block] = {node}
        return (latency, source)

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _apply_remote(self, node: int, block: int, event_code: int) -> None:
        """Apply a remote-observed event at one node's L2 (and L1s)."""
        l2 = self.l2[node]
        lines = l2._sets[block % l2.n_sets]
        line = lines.get(block)
        if line is None:
            return
        entry = self._int_table[line.code * N_EVENTS + event_code]
        if entry is None:
            raise illegal_transition(line.code, event_code)
        flags, next_code = entry
        if flags & ACT_WRITEBACK:
            # MESI: a read-shared M copy flushes to memory (no O state).
            self.dram.writeback(block, self._block_busy.get(block, 0))
            self.stats.writebacks += 1
            line.dirty = False
        if flags & ACT_DEALLOCATE:
            del lines[block]
            self._drop_l1(node, block)
            self._directory_remove(node, block)
        else:
            line.code = next_code
            # Losing write permission demotes any RW L1 copy.
            self._demote_l1(node, block)

    def _fill(self, node: int, block: int, code: int, dirty: bool) -> None:
        """Install an arriving block in a node's L2, handling the victim.

        Fused peek + insert over the set dict (one pass; runs once per
        L2 fill).  An existing line is overwritten in place *without* an
        LRU move -- IM_D after a racing OTHER_GETM stripped us while
        upgrading leaves the line object resident -- exactly as the
        peek-then-insert form behaved.  A capacity victim's line object
        is recycled for the incoming block (its old identity is passed on
        to the eviction leg by value), saving one allocation per miss
        once the L2 sets run full.
        """
        cache = self.l2[node]
        lines = cache._sets[block % cache.n_sets]
        existing = lines.get(block)
        if existing is not None:
            existing.code = code
            existing.dirty = dirty
            return
        if len(lines) >= cache.associativity:
            # LRU victim is the first (oldest) entry.
            victim = lines.pop(next(iter(lines)))
            cache.stats.evictions += 1
            victim_block = victim.block
            victim_code = victim.code
            victim.block = block
            victim.code = code
            victim.dirty = dirty
            lines[block] = victim
            self._handle_l2_eviction(node, victim_block, victim_code)
        else:
            lines[block] = CacheLine(block, code, dirty)

    def _handle_l2_eviction(self, node: int, victim_block: int, victim_code: int) -> None:
        """Run the replacement leg of the protocol for an evicted line."""
        entry = self._int_table[victim_code * N_EVENTS + EV_REPLACEMENT]
        if entry is None:
            raise illegal_transition(victim_code, EV_REPLACEMENT)
        flags, next_code = entry
        if flags & ACT_ISSUE_PUTM:
            # MI_A/OI_A + WB_ACK -> writeback to the home controller, off
            # the requestor's critical path.
            if self._int_table[next_code * N_EVENTS + EV_WB_ACK] is None:
                raise illegal_transition(next_code, EV_WB_ACK)
            self.dram.writeback(victim_block, self._block_busy.get(victim_block, 0))
            self.stats.writebacks += 1
        self._drop_l1(node, victim_block)
        self._directory_remove(node, victim_block)

    def _directory_remove(self, node: int, block: int) -> None:
        """Remove a node's copy from the directory."""
        sharers = self._sharers.get(block)
        if sharers is not None:
            sharers.discard(node)
            if not sharers:
                self._sharers.pop(block, None)
        if self._owner.get(block) == node:
            self._owner.pop(block, None)

    def _drop_l1(self, node: int, block: int) -> None:
        """Invalidate a block in both L1s of a node (inclusion)."""
        cache = self.l1i[node]
        cache._sets[block % cache.n_sets].pop(block, None)
        cache = self.l1d[node]
        cache._sets[block % cache.n_sets].pop(block, None)

    def _demote_l1(self, node: int, block: int) -> None:
        """Strip write permission from an L1 copy after an L2 demotion."""
        cache = self.l1d[node]
        line = cache._sets[block % cache.n_sets].get(block)
        if line is not None:
            line.code = _RO

    # ------------------------------------------------------------------
    # Directory maintenance
    # ------------------------------------------------------------------
    def rebuild_directory(self) -> None:
        """Derive the owner/sharer directory from current L2 contents.

        Used after cache contents are replayed into a new geometry or
        protocol (checkpoint restore across configurations): every
        resident L2 copy becomes a sharer, and lines in this protocol's
        owner states claim ownership.  If a replay surfaced two stale
        owners for one block (set-mapping changes can do this), the
        later node's copy is demoted to Shared so the single-owner
        invariant holds.
        """
        owner: dict[int, int] = {}
        sharers: dict[int, set[int]] = {}
        owner_mask = self._owner_mask
        for node in range(self.config.n_cpus):
            cache = self.l2[node]
            for block in cache.resident_blocks():
                line = cache.peek(block)
                sharers.setdefault(block, set()).add(node)
                if (1 << line.code) & owner_mask:
                    if block in owner:
                        line.code = _S
                    else:
                        owner[block] = node
        self._owner = owner
        self._sharers = sharers

    # ------------------------------------------------------------------
    # Occupancy digests (differential checks, tests)
    # ------------------------------------------------------------------
    def occupancy(self, include_order: bool = False) -> dict:
        """Timing-free content digest of cache and directory state.

        Returns, per node, the sorted set of resident ``(block, state,
        dirty)`` triples for each cache level, plus the directory's
        owner/sharer maps.  Deliberately excludes everything timing owns:
        busy windows, crossbar/DRAM occupancy, the perturbation cursor,
        and counters.  With ``include_order=True`` also returns the
        per-set LRU orderings (oldest first) under ``"lru"`` -- compared
        report-only by the functional-vs-timed differential, since LRU
        order legitimately diverges once interleaving differs.
        """

        def contents(cache) -> list:
            return sorted(
                (line.block, line.state, bool(line.dirty))
                for lines in cache._sets
                for line in lines.values()
            )

        def order(cache) -> list:
            return [list(lines) for lines in cache._sets]

        doc = {
            "l1i": [contents(c) for c in self.l1i],
            "l1d": [contents(c) for c in self.l1d],
            "l2": [contents(c) for c in self.l2],
            "owner": dict(sorted(self._owner.items())),
            "sharers": {b: sorted(s) for b, s in sorted(self._sharers.items())},
        }
        if include_order:
            doc["lru"] = {
                "l1i": [order(c) for c in self.l1i],
                "l1d": [order(c) for c in self.l1d],
                "l2": [order(c) for c in self.l2],
            }
        return doc

    # ------------------------------------------------------------------
    # Invariant checking (tests + debugging)
    # ------------------------------------------------------------------
    def check_coherence_invariants(self) -> list[str]:
        """Verify the single-writer / directory-consistency invariants.

        Returns a list of violations (empty when coherent).  O(total
        resident lines); intended for tests, not the hot path.
        """
        problems: list[str] = []
        by_block: dict[int, list[tuple[int, int]]] = {}
        for node in range(self.config.n_cpus):
            for block in self.l2[node].resident_blocks():
                line = self.l2[node].peek(block)
                by_block.setdefault(block, []).append((node, line.code))
        owner_mask = self._owner_mask
        for block, copies in by_block.items():
            m_holders = [n for n, c in copies if c == ST_M or c == ST_E]
            owners = [n for n, c in copies if (1 << c) & owner_mask]
            readable = {n for n, c in copies if (1 << c) & READABLE_MASK}
            if len(m_holders) > 1:
                problems.append(f"block {block}: multiple M copies {m_holders}")
            if m_holders and len(readable) > 1:
                problems.append(f"block {block}: M copy coexists with sharers")
            if len(owners) > 1:
                problems.append(f"block {block}: multiple owners {owners}")
            dir_owner = self._owner.get(block)
            if owners and dir_owner != owners[0]:
                problems.append(
                    f"block {block}: directory owner {dir_owner} != actual {owners[0]}"
                )
            dir_sharers = self._sharers.get(block, set())
            if readable != dir_sharers:
                problems.append(
                    f"block {block}: directory sharers {sorted(dir_sharers)} != "
                    f"actual {sorted(readable)}"
                )
        return problems

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Return the full checkpointable memory-system state."""
        return {
            "l1i": [c.snapshot() for c in self.l1i],
            "l1d": [c.snapshot() for c in self.l1d],
            "l2": [c.snapshot() for c in self.l2],
            "owner": dict(self._owner),
            "sharers": {b: set(s) for b, s in self._sharers.items()},
            "block_busy": dict(self._block_busy),
            "crossbar": self.crossbar.snapshot(),
            "dram": self.dram.snapshot(),
            "perturb": self._perturb.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore from a :meth:`snapshot` value."""
        self.l1i = [
            SetAssociativeCache.restore(self.config.l1i, s, name=f"l1i{i}")
            for i, s in enumerate(state["l1i"])
        ]
        self.l1d = [
            SetAssociativeCache.restore(self.config.l1d, s, name=f"l1d{i}")
            for i, s in enumerate(state["l1d"])
        ]
        self.l2 = [
            SetAssociativeCache.restore(self.config.l2, s, name=f"l2_{i}")
            for i, s in enumerate(state["l2"])
        ]
        self._owner = dict(state["owner"])
        self._sharers = {b: set(s) for b, s in state["sharers"].items()}
        self._block_busy = dict(state["block_busy"])
        self.crossbar.restore_state(state["crossbar"])
        self.dram.restore_state(state["dram"])
        self._perturb = RandomStream.restore(state["perturb"])
        self.stats = HierarchyStats()
