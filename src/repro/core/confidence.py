"""Confidence intervals and sample-size estimation (paper section 5.1.1).

The confidence interval for the mean of a normally distributed population
is ``ybar +/- t * s / sqrt(n)``, with ``t`` from the Student
t-distribution with n-1 degrees of freedom for n < 50 and from the normal
distribution otherwise (the paper's rule).

Non-overlapping confidence intervals at probability ``p`` bound the wrong
conclusion probability by ``1 - p`` (paper footnote 4).

Sample-size estimation (Cochran): to limit the relative error of the
estimated mean to ``r`` with confidence deviate ``t``,

    n = (t * S / (r * Y))^2

using prior estimates of the population mean Y and standard deviation S
(the coefficient of variation S/Y).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats

from repro.core.metrics import mean, sample_stddev

#: above this sample size the paper switches from t to the normal deviate
NORMAL_APPROXIMATION_N = 50


def critical_t(confidence: float, n: int) -> float:
    """Two-sided critical deviate for the given confidence and sample size."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if n < 2:
        raise ValueError("need at least two observations")
    upper = 1 - (1 - confidence) / 2
    if n < NORMAL_APPROXIMATION_N:
        return float(_scipy_stats.t.ppf(upper, df=n - 1))
    return float(_scipy_stats.norm.ppf(upper))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A confidence interval for a population mean."""

    mean: float
    lower: float
    upper: float
    confidence: float
    n: int

    @property
    def half_width(self) -> float:
        """Half the interval width (the +/- term)."""
        return (self.upper - self.lower) / 2

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"[{self.lower:.4g}, {self.upper:.4g}] "
            f"(mean {self.mean:.4g}, {100 * self.confidence:.0f}% CI, n={self.n})"
        )


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """The confidence interval of a sample's mean."""
    n = len(values)
    if n < 2:
        raise ValueError("confidence interval needs at least two runs")
    m = mean(values)
    s = sample_stddev(values)
    margin = critical_t(confidence, n) * s / math.sqrt(n)
    return ConfidenceInterval(
        mean=m, lower=m - margin, upper=m + margin, confidence=confidence, n=n
    )


def intervals_overlap(a: ConfidenceInterval, b: ConfidenceInterval) -> bool:
    """Whether two intervals overlap.

    Non-overlap at confidence ``p`` bounds the wrong-conclusion
    probability by ``1 - p``; overlap means the comparison is not
    statistically significant at that level.
    """
    return a.lower <= b.upper and b.lower <= a.upper


def estimate_sample_size(
    coefficient_of_variation: float,
    relative_error: float,
    confidence: float = 0.95,
) -> int:
    """Runs needed to bound the mean's relative error (paper 5.1.1).

    ``coefficient_of_variation`` is the prior S/Y estimate (e.g. 0.09 for
    the paper's 50-transaction OLTP runs), ``relative_error`` the target
    r.  The paper's worked example -- r=4 %, 95 % confidence, S/Y=9 % --
    yields (2 x 0.09 / 0.04)^2 ~= 20 runs.

    In comparison experiments, choose r less than half the expected
    performance difference so the configurations' intervals can separate.
    """
    if coefficient_of_variation <= 0:
        raise ValueError("coefficient of variation must be positive")
    if relative_error <= 0:
        raise ValueError("relative error must be positive")
    deviate = float(_scipy_stats.norm.ppf(1 - (1 - confidence) / 2))
    return math.ceil((deviate * coefficient_of_variation / relative_error) ** 2)
