"""Persistent, content-addressed storage for simulation runs.

The paper's methodology multiplies cost by N runs per configuration;
this package makes those runs *durable*: every completed simulation is
keyed by its complete cause (:mod:`repro.store.keys`), serialized to
JSON (:mod:`repro.store.serialize`), and persisted under a cache
directory with an append-only journal (:mod:`repro.store.store`).
``run_space(..., store=...)`` and :mod:`repro.campaign` consult the
store before executing, so interrupted experiments resume where they
stopped and repeated studies reuse prior measurements.
"""

from repro.store.keys import KEY_VERSION, canonical_json, digest, run_key, warm_key
from repro.store.serialize import (
    analysis_to_dict,
    run_config_from_dict,
    run_config_to_dict,
    run_sample_from_dict,
    run_sample_to_dict,
    simulation_result_from_dict,
    simulation_result_to_dict,
    system_config_from_dict,
    system_config_to_dict,
)
from repro.store.store import STORE_DIR_ENV, RunStore, default_store_dir

__all__ = [
    "KEY_VERSION",
    "canonical_json",
    "digest",
    "run_key",
    "warm_key",
    "analysis_to_dict",
    "run_config_from_dict",
    "run_config_to_dict",
    "run_sample_from_dict",
    "run_sample_to_dict",
    "simulation_result_from_dict",
    "simulation_result_to_dict",
    "system_config_from_dict",
    "system_config_to_dict",
    "STORE_DIR_ENV",
    "RunStore",
    "default_store_dir",
]
