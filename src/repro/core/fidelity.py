"""The mixed-fidelity escalation ladder.

The paper's methodology multiplies every design-space cell by N
perturbation seeds, so full-grid studies are dominated by simulation
cost.  Zhang et al. ("Validating Simplified Processor Models") observe
that simplified cores preserve *relative* conclusions -- which
configuration is faster -- in most of the design space; the regions
where they do not are exactly the ones worth full-fidelity money.  This
module operationalizes that:

1. **Run cheap.**  Every cell of a campaign executes at the policy's
   base tier (default ``"simple"``: the blocking SimpleCore substituted
   for the configured core model, everything else identical -- see
   :func:`repro.core.request.effective_config`).
2. **Audit sentinels.**  A subset of configurations per workload -- the
   baseline plus evenly spaced picks across the sweep -- also runs at
   the reference tier (default ``"ooo"``, full fidelity).  Each
   sentinel's *conclusion* (faster / slower / tie vs the baseline
   configuration, by CI overlap on the study metric) is compared across
   tiers through the :mod:`repro.verify.differential` machinery: two
   implementations, one answer.
3. **Escalate disagreement.**  A sentinel whose tiers disagree in a
   conclusion-changing way (sign flip, or a CI-overlap break) taints its
   *configuration family* (the sweep dimension, e.g. ``dram`` in
   ``dram=180``) for that workload: every cell of the family re-runs at
   the reference tier.
4. **Correct the rest.**  For cells whose family agreed, a per-(family,
   workload) linear correction ``ooo ~= a + b * simple`` is fitted from
   the paired sentinel runs already in the store (same seeds, both
   tiers) and applied to the base-tier values.  A cell whose *corrected*
   conclusion flips against its raw one is escalated too -- the
   correction itself says the cheap tier cannot be trusted there.

Every escalation decision is journaled as a store event
(:meth:`repro.store.RunStore.log_event`), so a shared store's audit
trail explains not only which runs exist but why the expensive ones were
paid for.  All runs go through ordinary :class:`~repro.campaign.Campaign`
execution, so they are content-addressed, cached, and resumable; a
re-invoked ladder re-reads everything from the store.

The ``"ffwd"`` tier (:func:`measure_functional`) is the floor of the
ladder: functional fast-forward with cycles *estimated* from hierarchy
event counts and the configuration's latency parameters.  It is
deterministic across perturbation seeds (functional execution draws no
perturbation), so it measures workload/configuration structure, not
variability -- useful for smoke sweeps and warm-up studies, not for the
paper's statistical protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.config import RunConfig, SystemConfig
from repro.core.confidence import confidence_interval, intervals_overlap
from repro.verify.differential import DifferentialResult

__all__ = [
    "CellOutcome",
    "CorrectionModel",
    "EscalationPolicy",
    "EscalationReport",
    "config_family",
    "measure_functional",
    "run_escalated_campaign",
    "sentinel_indices",
]


# ----------------------------------------------------------------------
# The ffwd tier: functional measurement with estimated timing
# ----------------------------------------------------------------------
def measure_functional(machine, config: SystemConfig, run: RunConfig):
    """Measure a window functionally; estimate cycles from event counts.

    The warm-up leg and the measurement window both execute through the
    fast-forward engine (:mod:`repro.core.ffwd`): full architectural
    state transitions, no event scheduling.  Cycles per transaction is
    then *estimated* as the latency-weighted sum of the window's
    hierarchy events (L1/L2 hits, memory fetches, cache-to-cache
    transfers, upgrades) divided by completed transactions -- the same
    counters the timed model charges, priced by the configuration's own
    latency parameters, with perfect overlap assumed across CPUs.

    Deterministic across perturbation seeds: functional execution draws
    no perturbation, so every seed of an ffwd sample returns the same
    value.  That is the tier's point (structure, not variability) and
    why ffwd results must never alias timed ones -- the ``"ffwd"``
    fidelity folds into their run keys.
    """
    from repro.sim.rng import stream_seed
    from repro.system.simulation import SimulationResult

    machine.hierarchy.seed_perturbation(stream_seed(run.seed, "perturbation"))
    base = machine.completed_transactions
    start_ns = machine.clock.now
    if run.warmup_transactions:
        start_ns = machine.fast_forward_transactions(
            base + run.warmup_transactions, max_time_ns=run.max_time_ns
        )
    before = _counter_snapshot(machine)
    start_txns = machine.completed_transactions
    end_ns = machine.fast_forward_transactions(
        start_txns + run.measured_transactions, max_time_ns=run.max_time_ns
    )
    measured = machine.completed_transactions - start_txns
    if measured == 0:
        raise ValueError(
            "no transactions completed in the measurement window; "
            "increase max_time_ns or reduce warmup"
        )
    after = _counter_snapshot(machine)
    delta = {name: after[name] - before[name] for name in after}

    memory = config.memory
    cost_ns = (
        delta["l1_hits"] * config.l1d.hit_latency_ns
        + delta["l2_hits"] * memory.l2_hit_latency_ns
        + delta["memory_fetches"] * (memory.memory_fetch_ns + memory.dram_latency_ns)
        + delta["cache_to_cache"] * memory.cache_transfer_ns
        + delta["upgrades"] * memory.cache_transfer_ns
    )
    elapsed = max(1, round(cost_ns / config.n_cpus))

    hierarchy = machine.hierarchy.stats
    return SimulationResult(
        cycles_per_transaction=cost_ns / measured,
        elapsed_ns=elapsed,
        measured_transactions=measured,
        start_ns=start_ns,
        end_ns=end_ns,
        n_cpus=config.n_cpus,
        seed=run.seed,
        timed_out=machine.timed_out,
        stats={
            "l1_hits": hierarchy.l1_hits,
            "l2_hits": hierarchy.l2_hits,
            "l2_misses": hierarchy.l2_misses,
            "l2_miss_rate": hierarchy.l2_miss_rate,
            "cache_to_cache": hierarchy.cache_to_cache,
            "memory_fetches": hierarchy.memory_fetches,
            "upgrades": hierarchy.upgrades,
            "writebacks": hierarchy.writebacks,
            "perturbation_total_ns": hierarchy.perturbation_total_ns,
            "block_race_stalls": hierarchy.block_race_stalls,
            "dispatches": machine.scheduler.dispatches,
            "migrations": machine.scheduler.migrations,
            "crossbar_queue_ns": machine.hierarchy.crossbar.stats.total_queue_ns,
            "estimated_timing": True,
        },
    )


def _counter_snapshot(machine) -> dict:
    stats = machine.hierarchy.stats
    return {
        name: getattr(stats, name)
        for name in (
            "l1_hits",
            "l2_hits",
            "l2_misses",
            "memory_fetches",
            "cache_to_cache",
            "upgrades",
            "writebacks",
        )
    }


# ----------------------------------------------------------------------
# Escalation policy and helpers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EscalationPolicy:
    """How the ladder audits and escalates.

    ``sentinel_fraction`` of the configurations (at least
    ``min_sentinels``, always including the baseline -- the first
    configuration -- and the last) run at ``reference_tier`` per
    workload; disagreement thresholds use ``confidence`` for the CI
    overlap test on the study metric (cycles per transaction).
    """

    base_tier: str = "simple"
    reference_tier: str = "ooo"
    sentinel_fraction: float = 0.25
    min_sentinels: int = 2
    confidence: float = 0.95

    def __post_init__(self) -> None:
        from repro.core.request import FIDELITY_TIERS

        for tier in (self.base_tier, self.reference_tier):
            if tier not in FIDELITY_TIERS:
                raise ValueError(f"unknown fidelity tier {tier!r}")
        if self.base_tier == self.reference_tier:
            raise ValueError("base and reference tiers must differ")
        if not 0.0 < self.sentinel_fraction <= 1.0:
            raise ValueError("sentinel_fraction must be in (0, 1]")
        if self.min_sentinels < 1:
            raise ValueError("min_sentinels must be positive")


def config_family(label: str) -> str:
    """The sweep dimension a configuration label belongs to.

    Campaign labels follow ``dimension=value`` (``dram=180``); the
    family is the dimension.  A label without ``=`` (e.g. ``base``) is
    its own family.
    """
    return label.split("=", 1)[0]


def sentinel_indices(n_configs: int, policy: EscalationPolicy) -> list[int]:
    """Which configuration indices are audited at the reference tier.

    Always includes index 0 (the baseline every conclusion is relative
    to) and, with two or more picks, the sweep's far end -- disagreement
    grows toward the edges of a sweep, so the extremes are audited
    before the middle.
    """
    if n_configs <= 0:
        raise ValueError("need at least one configuration")
    count = max(policy.min_sentinels, math.ceil(policy.sentinel_fraction * n_configs))
    count = min(count, n_configs)
    if count == 1:
        return [0]
    picked = sorted(
        {round(i * (n_configs - 1) / (count - 1)) for i in range(count)}
    )
    return picked


def _conclude(values, baseline, confidence: float) -> str:
    """The per-cell conclusion vs the baseline configuration.

    ``"faster"`` / ``"slower"`` (fewer / more cycles per transaction than
    baseline) when the samples' confidence intervals separate,
    ``"tie"`` when they overlap.  Degenerate samples (n < 2, or zero
    variance making the CI width 0) fall back to mean comparison.
    """
    mean_v = sum(values) / len(values)
    mean_b = sum(baseline) / len(baseline)
    if len(values) >= 2 and len(baseline) >= 2:
        try:
            if intervals_overlap(
                confidence_interval(values, confidence),
                confidence_interval(baseline, confidence),
            ):
                return "tie"
        except ValueError:
            pass
    if mean_v == mean_b:
        return "tie"
    return "faster" if mean_v < mean_b else "slower"


# ----------------------------------------------------------------------
# Correction models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorrectionModel:
    """A linear map from base-tier to reference-tier metric values.

    Fitted per (configuration family, workload) from paired runs -- the
    same perturbation seed executed at both tiers -- already in the
    store.  ``reference ~= intercept + slope * base``; with no or
    degenerate pairs the model is the identity (the ladder then leans
    entirely on sentinels).
    """

    family: str
    workload: str
    slope: float = 1.0
    intercept: float = 0.0
    n_pairs: int = 0

    @classmethod
    def fit(cls, family: str, workload: str, pairs) -> "CorrectionModel":
        """Least-squares fit of reference on base values."""
        pairs = list(pairs)
        n = len(pairs)
        if n < 2:
            return cls(family=family, workload=workload, n_pairs=n)
        xs = [x for x, _y in pairs]
        ys = [y for _x, y in pairs]
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        var_x = sum((x - mean_x) ** 2 for x in xs)
        if var_x == 0.0:
            # All base values identical: no slope information; shift only.
            return cls(
                family=family,
                workload=workload,
                slope=1.0,
                intercept=mean_y - mean_x,
                n_pairs=n,
            )
        slope = sum((x - mean_x) * (y - mean_y) for x, y in pairs) / var_x
        return cls(
            family=family,
            workload=workload,
            slope=slope,
            intercept=mean_y - slope * mean_x,
            n_pairs=n,
        )

    def apply(self, values) -> list[float]:
        """Map base-tier metric values to corrected reference-tier ones."""
        return [self.intercept + self.slope * v for v in values]


# ----------------------------------------------------------------------
# The ladder executor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellOutcome:
    """The ladder's final answer for one (configuration, workload) cell."""

    config_label: str
    workload: str
    #: tier the reported values carry: the reference tier (sentinel or
    #: escalated cells) or the base tier (corrected cells)
    tier: str
    #: cycles-per-transaction values backing the conclusion (corrected
    #: for base-tier cells)
    values: list[float]
    #: "faster" | "slower" | "tie" vs the baseline configuration
    conclusion: str
    #: "baseline" | "sentinel" | "escalated" | "corrected"
    kind: str
    reason: str = ""


@dataclass
class EscalationReport:
    """Everything the ladder decided and why."""

    outcomes: list[CellOutcome]
    differentials: list[DifferentialResult]
    corrections: dict = field(default_factory=dict)
    confidence: float = 0.95

    @property
    def n_cells(self) -> int:
        return len(self.outcomes)

    @property
    def n_reference_cells(self) -> int:
        """Cells that paid (or reused) reference-tier cost."""
        return sum(1 for o in self.outcomes if o.kind != "corrected")

    @property
    def reference_fraction(self) -> float:
        """Fraction of the grid that ran at the reference tier."""
        return self.n_reference_cells / self.n_cells if self.outcomes else 0.0

    def conclusion(self, config_label: str, workload: str) -> str:
        for outcome in self.outcomes:
            if outcome.config_label == config_label and outcome.workload == workload:
                return outcome.conclusion
        raise KeyError(f"no cell ({config_label!r}, {workload!r})")

    def render(self) -> str:
        from repro.analysis.tables import format_table

        rows = [
            [
                o.config_label,
                o.workload,
                o.tier,
                o.kind,
                f"{sum(o.values) / len(o.values):,.0f}",
                o.conclusion,
                o.reason,
            ]
            for o in self.outcomes
        ]
        table = format_table(
            ["config", "workload", "tier", "kind", "mean c/txn", "vs base", "why"],
            rows,
            title=(
                f"escalation ladder: {self.n_reference_cells}/{self.n_cells} "
                f"cells at reference tier "
                f"({100 * self.reference_fraction:.0f}%)"
            ),
        )
        bad = [d for d in self.differentials if not d.ok]
        if bad:
            table += "\n" + "\n".join(d.render() for d in bad)
        return table


def _tier_disagreement(
    label: str,
    workload: str,
    base_conclusion: str,
    ref_conclusion: str,
    base_values,
    ref_values,
) -> DifferentialResult:
    """One sentinel's tier comparison as a differential check.

    Same shape as the verify harness's differentials: two
    implementations (cheap tier, reference tier) answering one question
    (is this configuration faster than baseline?).  A conclusion
    mismatch -- sign flip or CI-overlap break -- fails the check and
    drives escalation; the mean shift between tiers is report-only.
    """
    name = f"fidelity[{label} x {workload}]"
    mean_base = sum(base_values) / len(base_values)
    mean_ref = sum(ref_values) / len(ref_values)
    notes = [
        f"tier means: base {mean_base:,.0f} vs reference {mean_ref:,.0f} c/txn"
    ]
    mismatches = []
    if base_conclusion != ref_conclusion:
        mismatches.append(
            f"conclusion vs baseline flips across tiers: base tier says "
            f"{base_conclusion!r}, reference tier says {ref_conclusion!r}"
        )
    return DifferentialResult(name=name, mismatches=mismatches, notes=notes)


def run_escalated_campaign(
    spec,
    store,
    *,
    policy: EscalationPolicy | None = None,
    n_jobs: int = 1,
    progress=None,
) -> EscalationReport:
    """Execute a campaign grid through the mixed-fidelity ladder.

    ``spec`` is a fixed-N :class:`~repro.campaign.plan.CampaignSpec`
    (its own ``fidelity`` field is ignored -- the policy's tiers drive
    execution); configuration labels must be unique.  All runs execute
    through ordinary campaigns against ``store``, so every tier's
    results are content-addressed and cached: re-invoking the ladder, or
    later running the full grid at the reference tier, reuses everything
    already paid for.

    Returns an :class:`EscalationReport` whose per-cell conclusions
    carry reference-tier quality where the tiers disagreed and
    corrected base-tier values elsewhere.  Escalation decisions are
    journaled via :meth:`repro.store.RunStore.log_event`.
    """
    from repro.campaign.campaign import Campaign

    policy = policy or EscalationPolicy()
    if spec.stop_rule is not None:
        raise ValueError(
            "the escalation ladder needs a fixed-N spec: adaptive cells grow "
            "from their own results, which contradicts pairing tiers seed by "
            "seed"
        )
    labels = [label for label, _config in spec.configs]
    if len(set(labels)) != len(labels):
        raise ValueError("escalation ladder needs unique configuration labels")

    def say(text: str) -> None:
        if progress is not None:
            progress(f"[ladder] {text}")

    def campaign_for(configs, tier, suffix: str):
        sub = replace(
            spec,
            configs=list(configs),
            fidelity=tier,
            name=f"{spec.name}-{suffix}",
        )
        return Campaign(sub, store, n_jobs=n_jobs).run(progress)

    # ---- 1. the whole grid at the base tier --------------------------
    say(f"base sweep: {len(spec.configs)} configs at tier {policy.base_tier!r}")
    base_report = campaign_for(spec.configs, policy.base_tier, policy.base_tier)
    base_values = {
        (cell.config_label, cell.workload): cell.sample.values
        for cell in base_report.cells
    }

    # ---- 2. sentinels at the reference tier --------------------------
    picked = sentinel_indices(len(spec.configs), policy)
    sentinel_configs = [spec.configs[i] for i in picked]
    say(
        f"sentinels: {[spec.configs[i][0] for i in picked]} at tier "
        f"{policy.reference_tier!r}"
    )
    ref_report = campaign_for(
        sentinel_configs, policy.reference_tier, policy.reference_tier
    )
    ref_values = {
        (cell.config_label, cell.workload): cell.sample.values
        for cell in ref_report.cells
    }

    baseline_label = labels[0]
    sentinel_labels = {spec.configs[i][0] for i in picked}
    confidence = policy.confidence

    # ---- 3. tier disagreement on sentinels -> escalate families ------
    differentials: list[DifferentialResult] = []
    escalate_families: set[tuple[str, str]] = set()
    for wspec in spec.workloads:
        wname = wspec.name
        base_base = base_values[(baseline_label, wname)]
        ref_base = ref_values[(baseline_label, wname)]
        for label in sorted(sentinel_labels):
            if label == baseline_label:
                continue
            check = _tier_disagreement(
                label,
                wname,
                _conclude(base_values[(label, wname)], base_base, confidence),
                _conclude(ref_values[(label, wname)], ref_base, confidence),
                base_values[(label, wname)],
                ref_values[(label, wname)],
            )
            differentials.append(check)
            if not check.ok:
                family = config_family(label)
                escalate_families.add((family, wname))
                store.log_event(
                    "escalation",
                    campaign=spec.name,
                    action="escalate-family",
                    family=family,
                    workload=wname,
                    sentinel=label,
                    reason=check.mismatches[0],
                )
                say(f"escalating family {family!r} x {wname}: {check.mismatches[0]}")

    # ---- 4. correction models from paired sentinel runs --------------
    corrections: dict[tuple[str, str], CorrectionModel] = {}
    for wspec in spec.workloads:
        wname = wspec.name
        by_family: dict[str, list] = {}
        for label in sentinel_labels:
            pairs = list(
                zip(base_values[(label, wname)], ref_values[(label, wname)])
            )
            by_family.setdefault(config_family(label), []).extend(pairs)
        pooled = [pair for pairs in by_family.values() for pair in pairs]
        for label, _config in spec.configs:
            family = config_family(label)
            if (family, wname) in corrections:
                continue
            pairs = by_family.get(family) or pooled
            corrections[(family, wname)] = CorrectionModel.fit(family, wname, pairs)

    # ---- 5. settle every cell ----------------------------------------
    escalated: list[tuple[str, object, str, str]] = []  # label, config, wname, why
    for label, config in spec.configs:
        if label in sentinel_labels:
            continue
        family = config_family(label)
        for wspec in spec.workloads:
            wname = wspec.name
            if (family, wname) in escalate_families:
                escalated.append(
                    (label, config, wname, f"family {family!r} sentinel disagreement")
                )
                continue
            model = corrections[(family, wname)]
            corrected = model.apply(base_values[(label, wname)])
            raw = _conclude(
                base_values[(label, wname)],
                base_values[(baseline_label, wname)],
                confidence,
            )
            adjusted = _conclude(
                corrected, ref_values[(baseline_label, wname)], confidence
            )
            if raw != adjusted:
                # The fitted correction changes this cell's conclusion:
                # the cheap tier is not trustworthy here either.
                escalated.append(
                    (
                        label,
                        config,
                        wname,
                        f"correction flips conclusion ({raw} -> {adjusted})",
                    )
                )

    escalated_cells = {(label, wname) for label, _c, wname, _why in escalated}
    for label, config, wname, why in escalated:
        store.log_event(
            "escalation",
            campaign=spec.name,
            action="escalate-cell",
            config=label,
            workload=wname,
            reason=why,
        )
    if escalated:
        say(f"escalating {len(escalated)} cells to tier {policy.reference_tier!r}")
        esc_labels = sorted({label for label, _c, _w, _why in escalated})
        esc_configs = [
            (label, config) for label, config in spec.configs if label in esc_labels
        ]
        esc_report = campaign_for(
            esc_configs, policy.reference_tier, f"{policy.reference_tier}-escalated"
        )
        for cell in esc_report.cells:
            if (cell.config_label, cell.workload) in escalated_cells:
                ref_values[(cell.config_label, cell.workload)] = cell.sample.values

    # ---- 6. assemble outcomes ----------------------------------------
    reasons = {(label, wname): why for label, _c, wname, why in escalated}
    outcomes: list[CellOutcome] = []
    for label, _config in spec.configs:
        family = config_family(label)
        for wspec in spec.workloads:
            wname = wspec.name
            key = (label, wname)
            ref_base = ref_values[(baseline_label, wname)]
            if label == baseline_label:
                outcomes.append(
                    CellOutcome(
                        config_label=label,
                        workload=wname,
                        tier=policy.reference_tier,
                        values=list(ref_base),
                        conclusion="tie",
                        kind="baseline",
                    )
                )
            elif key in ref_values:
                kind = "sentinel" if label in sentinel_labels else "escalated"
                outcomes.append(
                    CellOutcome(
                        config_label=label,
                        workload=wname,
                        tier=policy.reference_tier,
                        values=list(ref_values[key]),
                        conclusion=_conclude(ref_values[key], ref_base, confidence),
                        kind=kind,
                        reason=reasons.get(key, ""),
                    )
                )
            else:
                model = corrections[(family, wname)]
                corrected = model.apply(base_values[key])
                outcomes.append(
                    CellOutcome(
                        config_label=label,
                        workload=wname,
                        tier=policy.base_tier,
                        values=corrected,
                        conclusion=_conclude(corrected, ref_base, confidence),
                        kind="corrected",
                        reason=(
                            f"{model.family} fit: x{model.slope:.3f} "
                            f"{model.intercept:+,.0f} ({model.n_pairs} pairs)"
                        ),
                    )
                )

    report = EscalationReport(
        outcomes=outcomes,
        differentials=differentials,
        corrections=corrections,
        confidence=confidence,
    )
    store.log_event(
        "escalation",
        campaign=spec.name,
        action="summary",
        n_cells=report.n_cells,
        n_reference_cells=report.n_reference_cells,
        reference_fraction=round(report.reference_fraction, 4),
        escalated=sorted(f"{label} x {w}" for label, w in escalated_cells),
    )
    say(
        f"done: {report.n_reference_cells}/{report.n_cells} cells at "
        f"reference tier"
    )
    return report
