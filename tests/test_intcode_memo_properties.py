"""Property tests for the integer-coded miss path and the stream memo.

Two equivalence claims back the hot-path optimisations:

1. The flat integer transition tables (``int_table_for``) encode exactly
   the enum transition tables -- transition-for-transition, action-for-
   action, across all three protocols.  The reference miss path
   (:mod:`repro.memory.refpath`) must also be behaviourally identical to
   the optimised legs over real executions.

2. A memoized transaction stream is byte-identical to a regenerated one
   for every generator: filling the memo with one program and replaying
   a second from the same coordinates yields the same op lists and the
   same mutable generator state as building from scratch.
"""

import pytest

from repro.config import SystemConfig
from repro.memory.coherence import (
    ACTION_FLAGS,
    EVENT_CODES,
    N_COHERENCE_STATES,
    N_EVENTS,
    STATE_CODES,
    STATE_NAMES,
    MOSIState,
    ProtocolEvent,
    available_protocols,
    encode_actions,
    event_column,
    int_table_for,
    transitions_for,
)
from repro.memory.refpath import RefMissPathHierarchy
from repro.system.machine import Machine
from repro.workloads.base import WorkloadClock
from repro.workloads.registry import available_workloads, make_workload

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis unavailable"
)

PROTOCOLS = available_protocols()
WORKLOADS = available_workloads()


# ---------------------------------------------------------------------------
# 1a. flat int tables == enum tables (exhaustive)
# ---------------------------------------------------------------------------
class TestIntTableEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_enum_transition_is_encoded(self, protocol):
        enum_table = transitions_for(protocol)
        flat = int_table_for(protocol)
        for (state, event), transition in enum_table.items():
            entry = flat[STATE_CODES[state.value] * N_EVENTS + EVENT_CODES[event]]
            assert entry is not None, (protocol, state, event)
            flags, next_code = entry
            assert flags == encode_actions(transition.actions)
            assert STATE_NAMES[next_code] == transition.next_state.value

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_no_extra_transitions(self, protocol):
        enum_table = transitions_for(protocol)
        flat = int_table_for(protocol)
        assert len(flat) == N_COHERENCE_STATES * N_EVENTS
        assert sum(1 for entry in flat if entry is not None) == len(enum_table)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_event_columns_slice_the_table(self, protocol):
        flat = int_table_for(protocol)
        for event, event_code in EVENT_CODES.items():
            column = event_column(flat, event_code)
            assert len(column) == len(STATE_NAMES)
            for state_code in range(N_COHERENCE_STATES):
                assert column[state_code] == flat[state_code * N_EVENTS + event_code]
            # L1 permission tags (RO/RW) share the code space but have no
            # coherence transitions: padded illegal.
            for state_code in range(N_COHERENCE_STATES, len(STATE_NAMES)):
                assert column[state_code] is None

    def test_action_flags_are_distinct_bits(self):
        seen = 0
        for flag in ACTION_FLAGS.values():
            assert flag & seen == 0, "overlapping action flags"
            seen |= flag

    @needs_hypothesis
    @settings(max_examples=200, deadline=None)
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        state=st.sampled_from(list(MOSIState)),
        event=st.sampled_from(list(ProtocolEvent)),
    )
    def test_random_pairs_agree(self, protocol, state, event):
        enum_table = transitions_for(protocol)
        flat = int_table_for(protocol)
        entry = flat[STATE_CODES[state.value] * N_EVENTS + EVENT_CODES[event]]
        transition = enum_table.get((state, event))
        if transition is None:
            assert entry is None
        else:
            assert entry == (
                encode_actions(transition.actions),
                STATE_CODES[transition.next_state.value],
            )


# ---------------------------------------------------------------------------
# 1b. the reference miss path is behaviourally identical over executions
# ---------------------------------------------------------------------------
class TestRefMissPathParity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_ref_path_bit_identical(self, protocol):
        def run(ref):
            config = SystemConfig(n_cpus=4).with_protocol(protocol)
            machine = Machine(config, make_workload("oltp", seed=7))
            machine.hierarchy.seed_perturbation(77)
            if ref:
                RefMissPathHierarchy.install(machine.hierarchy)
            machine.run_until_transactions(300, 10**13)
            hierarchy = machine.hierarchy
            return (
                machine.clock.now,
                machine.completed_transactions,
                hierarchy.stats,
                hierarchy.occupancy(include_order=True),
            )

        assert run(False) == run(True)


# ---------------------------------------------------------------------------
# 2. memoized streams are byte-identical to regenerated streams
# ---------------------------------------------------------------------------
def _drive(program, clock, script, global_queue):
    """Run ``program`` over a scripted clock history, returning the deep
    op lists and the extra-state after-images it produced."""
    out = []
    for bump in script:
        # Other threads committing transactions move the workload clock;
        # the global-queue ticket counter is driven by next_ops itself.
        clock.total_transactions += bump
        ops = program.next_ops(None)
        out.append(([tuple(op) for op in ops], dict(program.extra_state())))
    return out


def _memo_identity(name, seed, script):
    """Build streams three ways -- unmemoized, memo-fill, memo-replay --
    and require byte-identical results."""
    runs = []
    fill_bucket: dict = {}
    for bucket in (None, fill_bucket, fill_bucket):
        workload = make_workload(name, seed=seed)
        clock = WorkloadClock()
        program = workload.make_program(1, clock)
        program._memo = bucket
        runs.append(_drive(program, clock, script, program.global_queue))
    unmemoized, filled, replayed = runs
    assert filled == unmemoized, f"{name}: memo-fill diverged from plain build"
    assert replayed == unmemoized, f"{name}: memo-replay diverged from plain build"
    if script:
        assert fill_bucket, f"{name}: memo bucket stayed empty"


class TestStreamMemoIdentity:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_replay_is_byte_identical(self, name):
        _memo_identity(name, seed=42, script=[0, 3, 1, 0, 7, 2, 0, 0, 5, 1])

    @needs_hypothesis
    @settings(max_examples=40, deadline=None)
    @given(
        name=st.sampled_from(WORKLOADS),
        seed=st.integers(min_value=0, max_value=2**31),
        script=st.lists(st.integers(min_value=0, max_value=9), max_size=12),
    )
    def test_replay_is_byte_identical_random(self, name, seed, script):
        _memo_identity(name, seed, script)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_cold_clock_replay_hits(self, name):
        """A second program replaying the same coordinates must *hit* (not
        silently rebuild) when the generator's stream token allows it --
        here the clock history is identical, so every generator must."""
        from repro.workloads.base import stream_memo_stats

        bucket: dict = {}
        script = [0, 2, 0, 1, 4, 0]
        before = None
        for _ in range(2):
            workload = make_workload(name, seed=9)
            clock = WorkloadClock()
            program = workload.make_program(0, clock)
            program._memo = bucket
            _drive(program, clock, script, program.global_queue)
            if before is None:
                before = stream_memo_stats().hits
        assert stream_memo_stats().hits - before >= len(script) - 1