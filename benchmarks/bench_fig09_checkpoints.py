"""Figure 9: runs from multiple starting points (OLTP and SPECjbb).

Paper 4.3: twenty runs from each of ten checkpoints spread across the
workload lifetime.  OLTP's per-checkpoint averages differ by >16 %;
SPECjbb's by >36 % even though its space variability (within-checkpoint
spread) is negligible -- time variability matters even for space-stable
workloads.
"""

from repro.analysis.tables import format_table
from repro.config import RunConfig, SystemConfig
from repro.core.sampling import checkpoint_study, systematic_checkpoint_counts
from repro.workloads.registry import make_workload

from benchmarks import common

#: per-workload study shape (paper: 10 checkpoints x 20 runs)
N_CHECKPOINTS = int(__import__("os").environ.get("REPRO_BENCH_CHECKPOINTS", "8"))
RUNS_PER_POINT = max(4, common.N_RUNS // 2)
STUDY = {
    # lifetime span, measured txns per run (paper: 10K-100K/200 for OLTP,
    # 100K-1M/5000 for SPECjbb -- scaled).  skip_initial places all
    # starting points past the cold-start region, as the paper's database
    # warm-up does, so the spread reflects workload phases rather than
    # cache warming.
    "oltp": {"lifetime": 4000, "txns": 200, "skip": 2000},
    "specjbb": {"lifetime": 4000, "txns": 400, "skip": 1000},
}
PAPER_SPREAD = {"oltp": 16.0, "specjbb": 36.0}


def run_study(name: str):
    params = STUDY[name]
    counts = systematic_checkpoint_counts(
        params["lifetime"], N_CHECKPOINTS, skip_initial=params["skip"]
    )
    return checkpoint_study(
        SystemConfig(),
        make_workload(name),
        counts,
        RunConfig(
            measured_transactions=params["txns"],
            seed=700,
            max_time_ns=common.MAX_TIME_NS,
        ),
        RUNS_PER_POINT,
    )


def run_experiment() -> dict:
    return {name: run_study(name) for name in STUDY}


def report(studies: dict) -> str:
    sections = []
    for name, study in studies.items():
        rows = []
        for count, summary in zip(study.checkpoint_transactions, study.summaries()):
            rows.append(
                [
                    count,
                    f"{summary.mean:,.0f}",
                    f"{summary.stddev:,.0f}",
                    f"{summary.minimum:,.0f}",
                    f"{summary.maximum:,.0f}",
                ]
            )
        table = format_table(
            ["warmup txns", "avg cycles/txn", "sd", "min", "max"],
            rows,
            title=f"Figure 9 ({name}): {RUNS_PER_POINT} runs per starting point",
        )
        spread = study.between_checkpoint_spread_percent()
        sections.append(
            table
            + f"\nbetween-checkpoint spread: {spread:.0f}% "
            + f"(paper: >{PAPER_SPREAD[name]:.0f}%)"
        )
    return "\n\n".join(sections)


def test_fig09(benchmark):
    studies = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    common.print_header("Figure 9: performance from multiple starting points")
    print(report(studies))
    # Both workloads show material time variability between checkpoints.
    assert studies["oltp"].between_checkpoint_spread_percent() > 5.0
    assert studies["specjbb"].between_checkpoint_spread_percent() > 10.0
    # SPECjbb's within-checkpoint spread stays small (space-stable).
    specjbb_cov = max(
        s.coefficient_of_variation for s in studies["specjbb"].summaries()
    )
    assert specjbb_cov < 2.0


if __name__ == "__main__":
    print(report(run_experiment()))
