"""End-to-end comparison experiments.

``compare_configurations`` is the methodology as an API: run N perturbed
simulations of two system configurations on one workload from the same
initial conditions, then report every decision aid the paper develops --
sample summaries, the single-run wrong-conclusion ratio, confidence
intervals with the overlap criterion, and the hypothesis test with its
tighter wrong-conclusion bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RunConfig, SystemConfig
from repro.core.confidence import (
    ConfidenceInterval,
    confidence_interval,
    intervals_overlap,
)
from repro.core.hypothesis import TTestResult, two_sample_t_test
from repro.core.metrics import VariabilitySummary
from repro.core.runner import RunSample, run_space
from repro.core.wcr import wrong_conclusion_ratio
from repro.workloads.base import Workload


@dataclass
class ComparisonResult:
    """Everything the methodology says about "is B better than A?".

    Metric is cycles per transaction, so *lower is better* throughout.
    ``label_a``/``label_b`` are human-readable configuration names.
    """

    label_a: str
    label_b: str
    sample_a: RunSample
    sample_b: RunSample
    summary_a: VariabilitySummary
    summary_b: VariabilitySummary
    wcr_percent: float
    interval_a: ConfidenceInterval
    interval_b: ConfidenceInterval
    intervals_separate: bool
    t_test: TTestResult
    confidence: float

    @property
    def faster(self) -> str:
        """Label of the configuration with the lower mean."""
        return self.label_a if self.summary_a.mean < self.summary_b.mean else self.label_b

    @property
    def speedup_percent(self) -> float:
        """Mean improvement of the faster configuration (percent)."""
        slower = max(self.summary_a.mean, self.summary_b.mean)
        faster = min(self.summary_a.mean, self.summary_b.mean)
        return 100.0 * (slower - faster) / slower

    @property
    def conclusion_is_safe(self) -> bool:
        """Whether the CI-overlap criterion permits a conclusion."""
        return self.intervals_separate

    @property
    def wrong_conclusion_bound(self) -> float:
        """The tighter (hypothesis-test) wrong-conclusion bound."""
        return self.t_test.wrong_conclusion_bound

    def to_dict(self) -> dict:
        """Plain-data (JSON-serializable) form for ``--json`` scripting.

        Samples round-trip via :meth:`RunSample.from_dict`; the derived
        statistics are one-way exports (recompute them from the samples).
        """
        from dataclasses import asdict

        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "sample_a": self.sample_a.to_dict(),
            "sample_b": self.sample_b.to_dict(),
            "summary_a": asdict(self.summary_a),
            "summary_b": asdict(self.summary_b),
            "wcr_percent": self.wcr_percent,
            "interval_a": asdict(self.interval_a),
            "interval_b": asdict(self.interval_b),
            "intervals_separate": self.intervals_separate,
            "t_test": asdict(self.t_test),
            "confidence": self.confidence,
            "faster": self.faster,
            "speedup_percent": self.speedup_percent,
            "conclusion_is_safe": self.conclusion_is_safe,
        }

    def report(self) -> str:
        """A compact human-readable report."""
        lines = [
            f"{self.label_a}: {self.summary_a}",
            f"{self.label_b}: {self.summary_b}",
            f"single-run WCR: {self.wcr_percent:.1f}%",
            f"{100 * self.confidence:.0f}% CI {self.label_a}: {self.interval_a}",
            f"{100 * self.confidence:.0f}% CI {self.label_b}: {self.interval_b}",
        ]
        if self.intervals_separate:
            lines.append(
                f"intervals separate: concluding '{self.faster} is faster' has "
                f"wrong-conclusion probability < {1 - self.confidence:.3g}"
            )
        else:
            lines.append("intervals overlap: not significant at this confidence")
        lines.append(
            f"t-test: t={self.t_test.statistic:.2f}, one-sided "
            f"p={self.t_test.p_value:.4f} (tighter wrong-conclusion bound)"
        )
        return "\n".join(lines)


def compare_configurations(
    config_a: SystemConfig,
    config_b: SystemConfig,
    workload: Workload | str,
    run: RunConfig,
    n_runs: int,
    *,
    label_a: str = "A",
    label_b: str = "B",
    confidence: float = 0.95,
    checkpoint=None,
    n_jobs: int = 1,
    workload_seed: int | None = None,
    store=None,
) -> ComparisonResult:
    """Run the full comparison methodology between two configurations.

    ``workload_seed`` and ``store`` pass through to :func:`run_space`:
    the former pins the workload content stream when ``workload`` is a
    name, the latter enables persistent run caching so repeated or
    interrupted comparisons reuse completed runs.
    """
    sample_a = run_space(
        config_a, workload, run, n_runs, checkpoint=checkpoint, n_jobs=n_jobs,
        workload_seed=workload_seed, store=store,
    )
    sample_b = run_space(
        config_b, workload, run, n_runs, checkpoint=checkpoint, n_jobs=n_jobs,
        workload_seed=workload_seed, store=store,
    )
    return compare_samples(
        sample_a,
        sample_b,
        label_a=label_a,
        label_b=label_b,
        confidence=confidence,
    )


def compare_samples(
    sample_a: RunSample,
    sample_b: RunSample,
    *,
    label_a: str = "A",
    label_b: str = "B",
    confidence: float = 0.95,
) -> ComparisonResult:
    """Apply the methodology to two already-collected samples."""
    values_a, values_b = sample_a.values, sample_b.values
    interval_a = confidence_interval(values_a, confidence)
    interval_b = confidence_interval(values_b, confidence)
    # Orient the one-sided test so H1 is "the slower-looking config is
    # genuinely slower".
    if interval_a.mean >= interval_b.mean:
        t_test = two_sample_t_test(values_a, values_b)
    else:
        t_test = two_sample_t_test(values_b, values_a)
    return ComparisonResult(
        label_a=label_a,
        label_b=label_b,
        sample_a=sample_a,
        sample_b=sample_b,
        summary_a=sample_a.summary(),
        summary_b=sample_b.summary(),
        wcr_percent=wrong_conclusion_ratio(values_a, values_b),
        interval_a=interval_a,
        interval_b=interval_b,
        intervals_separate=not intervals_overlap(interval_a, interval_b),
        t_test=t_test,
        confidence=confidence,
    )
