"""Real-system measurement emulation.

The paper's Section 2.2 measures OLTP on a real Sun E5000 (twelve 167 MHz
UltraSPARC-II processors) using hardware performance counters, showing
time variability within one run (Figure 2) and space variability across
five runs (Figure 3) at 1/10/60-second observation intervals.

We have no E5000, so :mod:`repro.realsys.e5000` provides a coarse
measurement emulator: a per-second throughput process with the phase
structure of a loaded database server (buffer-pool waves, log-flush
stalls, background daemons) and *inherent* run-to-run randomness -- real
machines need no injected perturbation.  :mod:`repro.realsys.counters`
exposes the hardware-counter view used to compute cycles per transaction
per interval.
"""

from repro.realsys.counters import HardwareCounters
from repro.realsys.e5000 import RealMeasurement, SunE5000

__all__ = ["HardwareCounters", "RealMeasurement", "SunE5000"]
