"""Figure 5 + Table 1: L2 cache associativity (Experiment 1).

Paper 4.1.1: twenty 200-transaction OLTP runs per configuration
(direct-mapped, 2-way, 4-way; 4 MB L2 held constant) with the simple
processor model.  Expected: average cycles/transaction falls as
associativity rises, but the per-configuration ranges overlap, and the
single-run wrong-conclusion ratios are large (paper: 24 % / 10 % / 31 %).
"""

from repro.analysis.series import add_sample_point, summary_series
from repro.analysis.tables import format_table
from repro.core.wcr import wrong_conclusion_ratio

from benchmarks import common
from benchmarks.experiments import experiment1_samples

PAPER_WCR = {(1, 2): 24.0, (1, 4): 10.0, (2, 4): 31.0}
LABELS = {1: "Direct Mapped", 2: "2-way SA", 4: "4-way SA"}


def run_experiment() -> dict:
    samples = experiment1_samples()
    series = summary_series("Figure 5: OLTP cycles/txn vs L2 associativity", "L2 set size")
    for assoc in (1, 2, 4):
        add_sample_point(series, assoc, samples[assoc].values)
    wcr = {
        pair: wrong_conclusion_ratio(samples[pair[0]].values, samples[pair[1]].values)
        for pair in ((1, 2), (1, 4), (2, 4))
    }
    return {"series": series, "wcr": wcr, "samples": samples}


def report(result: dict) -> str:
    from repro.analysis.ascii import sample_chart

    chart = sample_chart(
        {LABELS[a]: result["samples"][a].values for a in (1, 2, 4)}
    )
    lines = [result["series"].render(), "", chart, ""]
    rows = []
    for (a, b), value in result["wcr"].items():
        rows.append(
            [
                f"{LABELS[a]} vs ({LABELS[b]})",
                f"{PAPER_WCR[(a, b)]:.0f}%",
                f"{value:.0f}%",
            ]
        )
    lines.append(
        format_table(
            ["Configurations Compared (Superior)", "paper WCR", "measured WCR"],
            rows,
            title="Table 1: Wrong Conclusion Ratios",
        )
    )
    means = {a: result["samples"][a].summary().mean for a in (1, 2, 4)}
    lines.append("")
    lines.append(
        f"ordering: DM {means[1]:,.0f} > 2-way {means[2]:,.0f} > 4-way {means[4]:,.0f}"
        f"  (expected conclusion holds: {means[1] > means[2] > means[4]})"
    )
    return "\n".join(lines)


def test_fig05_table1(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    common.print_header("Figure 5 / Table 1: cache associativity (Experiment 1)")
    print(report(result))
    means = [result["samples"][a].summary().mean for a in (1, 2, 4)]
    # The paper's expected conclusion: higher associativity is faster.
    assert means[0] > means[2]
    # And single runs must be risky: ranges overlap.
    assert result["samples"][2].summary().minimum < result["samples"][4].summary().maximum


if __name__ == "__main__":
    print(report(run_experiment()))
