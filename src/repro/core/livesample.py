"""Live sampling: online phase detection + stratified window placement.

:func:`repro.core.sampling.multi_window_sample` places timed windows on
a fixed cadence, spending the same budget on a flat region as on one
that is changing.  This module replaces the cadence with *behaviour*:

1. **Survey** (functional, no timing model): fast-forward across the
   measured region with a
   :class:`~repro.probes.collectors.PhaseSignatureProbe` attached,
   producing one cheap feature vector per candidate window interval --
   coherence traffic, lock contention, and transaction mix per
   transaction (the signals that stay live during functional
   fast-forward; see :mod:`repro.core.ffwd`).
2. **Detect** phases online: :class:`OnlinePhaseDetector` runs a
   robust-z change-point test over the vectors as they arrive
   (Pac-Sim-style), splitting the lifetime into phase segments;
   :func:`stratify` merges behaviourally-equal segments (a recurring
   phase is *one* stratum, however many times it occurs).
3. **Allocate** a timed-window budget in two phases (Ekman-style):
   pilot windows establish each stratum's variance, then
   :func:`neyman_allocation` spends the remainder proportionally to
   ``weight x stddev`` -- optionally only as much of it as the
   projected CI half-width needs (``target_fraction``).
4. **Estimate** with the stratified formulas: mean ``sum(W_h ybar_h)``,
   variance ``sum(W_h^2 s_h^2 / n_h)``, Satterthwaite degrees of
   freedom -- degenerating *exactly* to
   :func:`repro.core.confidence.confidence_interval` when one stratum
   covers the lifetime.

Everything is deterministic given the run's seed: window placement is
a pure function of the survey signatures, and each pass (survey,
pilot, allocated) starts from identical initial conditions via a
machine factory, seeded with the same perturbation stream as any other
run.  Results are *estimates* of the measured region -- which is why
``sampling_mode="live"`` folds into store keys
(:mod:`repro.store.keys`) and must never alias the exhaustively-timed
``"fixed"`` result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from scipy import stats as _scipy_stats

from repro.config import RunConfig, SystemConfig
from repro.core.confidence import NORMAL_APPROXIMATION_N, ConfidenceInterval
from repro.core.metrics import mean, sample_stddev

# ---------------------------------------------------------------------------
# Defaults.  These are module-level constants, NOT RunConfig fields:
# RunConfig serializes via asdict(), so a new field there would change
# every existing store key.  The key-folded ``sampling_mode`` selects
# live sampling; these constants define what "live" means, and bumping
# them is a semantic change gated by KEY_VERSION like any other.
# ---------------------------------------------------------------------------

#: candidate window intervals the measured region is divided into
LIVE_INTERVALS = 16

#: timed-window budget as a fraction of the candidate intervals
LIVE_BUDGET_FRACTION = 0.5

#: pilot windows per stratum before Neyman allocation
LIVE_PILOT_WINDOWS = 2

#: stop spending budget once the projected CI half-width is below this
#: fraction of the running point estimate (the paper's 2 % precision
#: target, section 5.1.1)
LIVE_TARGET_FRACTION = 0.02

#: intervals the detector must see before it can call a change point
DETECTOR_MIN_INTERVALS = 4

#: robust-z score a vector must exceed to look like a new phase
DETECTOR_THRESHOLD = 6.0

#: consecutive out-of-phase intervals required to confirm a change
#: (a single outlier interval is absorbed, not a phase)
DETECTOR_PATIENCE = 2

#: per-dimension deviation floor, relative to the dimension's mean --
#: guards the z-score against near-zero variance in flat phases and
#: makes sub-floor jitter provably unable to fire the detector
DETECTOR_REL_FLOOR = 0.05

#: absolute deviation floor for dimensions whose mean is ~0
DETECTOR_ABS_FLOOR = 1e-9

#: maximum normalized centroid distance at which two phase segments
#: are considered the same behaviour (one stratum)
STRATUM_MERGE_THRESHOLD = 0.25


# ---------------------------------------------------------------------------
# Online change-point detection
# ---------------------------------------------------------------------------


class OnlinePhaseDetector:
    """Streaming change-point test over per-interval feature vectors.

    Maintains the current phase's per-dimension mean and spread; an
    arriving vector whose worst-dimension robust z-score exceeds
    ``threshold`` for ``patience`` consecutive intervals starts a new
    phase at the first such interval.  Fewer than ``patience``
    consecutive outliers are absorbed into the current phase (system
    noise produces isolated spikes; phases persist).

    The z-score's denominator is floored at ``rel_floor * |mean|`` (and
    ``abs_floor`` absolutely), which has two load-bearing consequences:
    a *constant* signal stays scoreable (sample stddev 0 would otherwise
    divide by zero), and jitter smaller than the floor **cannot** fire
    the detector no matter how the sample variance fluctuates -- the
    "silent on iid noise" property is structural, not probabilistic.
    """

    def __init__(
        self,
        *,
        min_intervals: int = DETECTOR_MIN_INTERVALS,
        threshold: float = DETECTOR_THRESHOLD,
        patience: int = DETECTOR_PATIENCE,
        rel_floor: float = DETECTOR_REL_FLOOR,
        abs_floor: float = DETECTOR_ABS_FLOOR,
    ) -> None:
        if min_intervals < 2:
            raise ValueError("min_intervals must be at least 2")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.min_intervals = min_intervals
        self.threshold = threshold
        self.patience = patience
        self.rel_floor = rel_floor
        self.abs_floor = abs_floor
        self._phase: list[dict[str, float]] = []
        self._pending: list[tuple[int, dict[str, float]]] = []
        self._index = 0
        #: confirmed change points: interval index starting each new phase
        self.change_points: list[int] = []

    def _score(self, features: Mapping[str, float]) -> float:
        """Worst-dimension robust z of ``features`` vs the current phase."""
        n = len(self._phase)
        dims: set[str] = set(features)
        for vector in self._phase:
            dims.update(vector)
        worst = 0.0
        for dim in dims:
            values = [vector.get(dim, 0.0) for vector in self._phase]
            mu = sum(values) / n
            if n > 1:
                var = sum((v - mu) ** 2 for v in values) / (n - 1)
                sigma = math.sqrt(var)
            else:
                sigma = 0.0
            scale = max(sigma, self.rel_floor * abs(mu) + self.abs_floor)
            worst = max(worst, abs(features.get(dim, 0.0) - mu) / scale)
        return worst

    def observe(self, features: Mapping[str, float]) -> int | None:
        """Feed the next interval's vector; returns the change-point
        interval index when a phase change is confirmed, else ``None``."""
        index = self._index
        self._index += 1
        if len(self._phase) < self.min_intervals:
            # Still seeding the first phase model.
            self._phase.append(dict(features))
            return None
        if self._score(features) > self.threshold:
            self._pending.append((index, dict(features)))
            if len(self._pending) >= self.patience:
                start = self._pending[0][0]
                self._phase = [vector for _, vector in self._pending]
                self._pending = []
                self.change_points.append(start)
                return start
            return None
        # Back in phase: pending outliers were transients, absorb them.
        for _, vector in self._pending:
            self._phase.append(vector)
        self._pending = []
        self._phase.append(dict(features))
        return None


@dataclass(frozen=True)
class PhaseSegment:
    """One contiguous run of intervals the detector calls a phase."""

    start: int
    end: int  # exclusive
    centroid: tuple  # sorted ((dim, mean-value), ...) -- hashable

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def centroid_dict(self) -> dict[str, float]:
        return dict(self.centroid)


def _centroid(signatures: Sequence[Mapping[str, float]]) -> tuple:
    dims: set[str] = set()
    for vector in signatures:
        dims.update(vector)
    n = len(signatures)
    return tuple(
        sorted(
            (dim, sum(vector.get(dim, 0.0) for vector in signatures) / n)
            for dim in dims
        )
    )


def detect_phases(
    signatures: Sequence[Mapping[str, float]],
    **detector_kwargs,
) -> tuple[list[PhaseSegment], list[int]]:
    """Split a signature series into phase segments.

    Runs :class:`OnlinePhaseDetector` over the series and cuts it at
    every confirmed change point; returns the segments (covering every
    interval exactly once, in order) and the change-point indices.
    """
    if not signatures:
        return [], []
    detector = OnlinePhaseDetector(**detector_kwargs)
    for vector in signatures:
        detector.observe(vector)
    boundaries = [0, *detector.change_points, len(signatures)]
    segments = [
        PhaseSegment(start=lo, end=hi, centroid=_centroid(signatures[lo:hi]))
        for lo, hi in zip(boundaries, boundaries[1:])
        if hi > lo
    ]
    return segments, list(detector.change_points)


# ---------------------------------------------------------------------------
# Stratification
# ---------------------------------------------------------------------------


@dataclass
class Stratum:
    """A group of behaviourally-equal intervals (possibly from several
    non-contiguous phase segments -- a recurring phase is one stratum)."""

    intervals: list[int]
    centroid: dict[str, float]

    @property
    def size(self) -> int:
        return len(self.intervals)


def centroid_distance(
    a: Mapping[str, float],
    b: Mapping[str, float],
    *,
    abs_floor: float = DETECTOR_ABS_FLOOR,
) -> float:
    """Worst-dimension relative distance between two feature centroids."""
    dims = set(a) | set(b)
    worst = 0.0
    for dim in dims:
        x = a.get(dim, 0.0)
        y = b.get(dim, 0.0)
        scale = max(abs(x), abs(y), abs_floor)
        worst = max(worst, abs(x - y) / scale)
    return worst


def stratify(
    segments: Sequence[PhaseSegment],
    *,
    merge_threshold: float = STRATUM_MERGE_THRESHOLD,
) -> list[Stratum]:
    """Group phase segments into behaviour strata.

    Greedy in segment order: each segment joins the first stratum whose
    centroid lies within ``merge_threshold`` (worst-dimension relative
    distance), updating that centroid as the size-weighted mean;
    otherwise it opens a new stratum.  Deterministic, and order-stable:
    stratum 0 always contains the lifetime's first interval.
    """
    strata: list[Stratum] = []
    for segment in segments:
        seg_centroid = segment.centroid_dict
        for stratum in strata:
            if centroid_distance(seg_centroid, stratum.centroid) <= merge_threshold:
                total = stratum.size + segment.length
                dims = set(stratum.centroid) | set(seg_centroid)
                stratum.centroid = {
                    dim: (
                        stratum.centroid.get(dim, 0.0) * stratum.size
                        + seg_centroid.get(dim, 0.0) * segment.length
                    )
                    / total
                    for dim in dims
                }
                stratum.intervals.extend(range(segment.start, segment.end))
                break
        else:
            strata.append(
                Stratum(
                    intervals=list(range(segment.start, segment.end)),
                    centroid=dict(seg_centroid),
                )
            )
    return strata


# ---------------------------------------------------------------------------
# Budget allocation (Ekman-style two-phase / Neyman)
# ---------------------------------------------------------------------------


def neyman_allocation(
    budget: int,
    weights: Sequence[float],
    stddevs: Sequence[float],
    *,
    floor: int = 1,
) -> list[int]:
    """Split an integer window budget across strata, Neyman-style.

    Every stratum first receives ``floor`` windows; the remainder is
    distributed proportionally to ``weights[h] * stddevs[h]`` (the
    optimal allocation for minimizing the stratified variance at fixed
    total n), with fractional shares resolved by largest remainder.
    Zero-variance strata therefore get exactly the floor -- unless
    *every* stratum has zero variance, in which case the remainder
    falls back to weight-proportional (the allocation must still sum
    to ``budget``).

    Properties (locked by hypothesis tests): the result sums exactly to
    ``budget``; permuting strata permutes the allocation identically
    (tie-breaks are value-based, not index-based, so this holds
    whenever the ``weight x stddev`` products are distinct).
    """
    n_strata = len(weights)
    if n_strata == 0:
        raise ValueError("need at least one stratum")
    if len(stddevs) != n_strata:
        raise ValueError("weights and stddevs must have equal length")
    if floor < 0:
        raise ValueError("floor must be non-negative")
    if any(w <= 0 for w in weights):
        raise ValueError("stratum weights must be positive")
    if any(s < 0 for s in stddevs):
        raise ValueError("stddevs must be non-negative")
    if budget < floor * n_strata:
        raise ValueError(
            f"budget {budget} cannot give {n_strata} strata the floor of {floor}"
        )
    shares = [w * s for w, s in zip(weights, stddevs)]
    if sum(shares) == 0:
        shares = list(weights)
    total = sum(shares)
    remainder = budget - floor * n_strata
    quotas = [remainder * share / total for share in shares]
    allocation = [floor + math.floor(quota) for quota in quotas]
    leftover = budget - sum(allocation)
    # Largest-remainder rounding with value-based tie-breaks.
    order = sorted(
        range(n_strata),
        key=lambda h: (quotas[h] - math.floor(quotas[h]), shares[h], weights[h]),
        reverse=True,
    )
    for h in order[:leftover]:
        allocation[h] += 1
    return allocation


def _capped_allocation(
    extra: int,
    weights: Sequence[float],
    stddevs: Sequence[float],
    capacities: Sequence[int],
) -> list[int]:
    """Neyman allocation with per-stratum capacity limits.

    A stratum cannot receive more windows than it has unmeasured
    intervals; its overflow is re-allocated among the others (another
    Neyman pass over the still-open strata) until the budget is spent
    or every stratum is saturated.
    """
    n_strata = len(weights)
    allocation = [0] * n_strata
    active = [h for h in range(n_strata) if capacities[h] > 0]
    while extra > 0 and active:
        shares = neyman_allocation(
            extra,
            [weights[h] for h in active],
            [stddevs[h] for h in active],
            floor=0,
        )
        for position, h in enumerate(active):
            take = min(shares[position], capacities[h] - allocation[h])
            allocation[h] += take
            extra -= take
        active = [h for h in active if allocation[h] < capacities[h]]
    return allocation


def _projected_half_width(
    weights: Sequence[float],
    stddevs: Sequence[float],
    counts: Sequence[int],
    confidence: float,
) -> float:
    """Planning projection of the stratified CI half-width.

    Uses the normal deviate (Cochran's planning convention -- the
    realized interval uses Student t with Satterthwaite df, so the
    projection is slightly optimistic at small n; the allocator keeps
    spending until the *projection* meets the target, and the realized
    interval is what callers assert against)."""
    variance = sum(
        (w * s) ** 2 / n for w, s, n in zip(weights, stddevs, counts) if n > 0
    )
    deviate = float(_scipy_stats.norm.ppf(1 - (1 - confidence) / 2))
    return deviate * math.sqrt(variance)


# ---------------------------------------------------------------------------
# Stratified estimation
# ---------------------------------------------------------------------------


def stratified_confidence_interval(
    values_by_stratum: Sequence[Sequence[float]],
    weights: Sequence[float],
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """CI of the population mean from per-stratum samples.

    Mean ``sum(W_h ybar_h)``, variance ``sum(W_h^2 s_h^2 / n_h)``,
    Satterthwaite degrees of freedom, and the same t-vs-normal switch
    as :func:`repro.core.confidence.confidence_interval` -- to which
    this degenerates exactly when a single stratum covers everything
    (locked by a property test).

    A stratum with a single observation has no variance estimate of
    its own; it conservatively adopts the largest stddev measured in
    any other stratum (its true spread is unknown, so assume the worst
    observed).  At least one stratum must carry two observations.
    """
    n_strata = len(values_by_stratum)
    if n_strata == 0:
        raise ValueError("need at least one stratum")
    if len(weights) != n_strata:
        raise ValueError("weights and values must have equal length")
    if any(w <= 0 for w in weights):
        raise ValueError("stratum weights must be positive")
    if any(len(values) == 0 for values in values_by_stratum):
        raise ValueError("every stratum needs at least one observation")
    total_weight = sum(weights)
    norm_weights = [w / total_weight for w in weights]
    counts = [len(values) for values in values_by_stratum]
    if max(counts) < 2:
        raise ValueError(
            "stratified interval needs at least one stratum with two observations"
        )
    means = [mean(values) for values in values_by_stratum]
    measured_stds = [
        sample_stddev(values) if len(values) >= 2 else None
        for values in values_by_stratum
    ]
    fallback = max(s for s in measured_stds if s is not None)
    stds = [s if s is not None else fallback for s in measured_stds]
    overall = sum(w * m for w, m in zip(norm_weights, means))
    terms = [
        (w * s) ** 2 / n for w, s, n in zip(norm_weights, stds, counts)
    ]
    variance = sum(terms)
    total_n = sum(counts)
    if variance == 0:
        return ConfidenceInterval(
            mean=overall,
            lower=overall,
            upper=overall,
            confidence=confidence,
            n=total_n,
        )
    # Satterthwaite: only strata with a real variance estimate contribute
    # degrees of freedom.
    dof_denominator = sum(
        term**2 / (n - 1)
        for term, n, s in zip(terms, counts, measured_stds)
        if s is not None and n >= 2
    )
    dof = variance**2 / dof_denominator if dof_denominator > 0 else total_n - 1
    upper_p = 1 - (1 - confidence) / 2
    if dof + 1 < NORMAL_APPROXIMATION_N:
        deviate = float(_scipy_stats.t.ppf(upper_p, df=dof))
    else:
        deviate = float(_scipy_stats.norm.ppf(upper_p))
    margin = deviate * math.sqrt(variance)
    return ConfidenceInterval(
        mean=overall,
        lower=overall - margin,
        upper=overall + margin,
        confidence=confidence,
        n=total_n,
    )


# ---------------------------------------------------------------------------
# The live sampler
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LiveWindow:
    """One timed measurement window placed by the live sampler."""

    interval: int  # candidate-interval index within the measured region
    stratum: int
    start_ns: int
    end_ns: int
    transactions: int
    cycles_per_transaction: float

    @property
    def valid(self) -> bool:
        return self.transactions > 0


@dataclass(frozen=True)
class StratumEstimate:
    """Per-stratum measurement summary feeding the stratified formulas."""

    index: int
    intervals: tuple[int, ...]
    weight: float
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean_value(self) -> float:
        return mean(self.values)

    @property
    def stddev(self) -> float:
        return sample_stddev(self.values) if self.n >= 2 else 0.0


@dataclass
class LiveSample:
    """The live sampler's full outcome for one seed."""

    windows: list[LiveWindow] = field(default_factory=list)
    strata: list[StratumEstimate] = field(default_factory=list)
    change_points: list[int] = field(default_factory=list)
    n_intervals: int = 0
    interval_transactions: int = 0
    n_cpus: int = 1
    seed: int = 0
    timed_out: bool = False
    #: transaction-stream memo deltas over the sampler's three passes
    #: (repro.workloads.base) -- hits are build_transaction calls the
    #: multi-pass replay avoided; None when the memo is disabled.
    #: Diagnostics only: deliberately NOT part of summary(), because the
    #: delta depends on process-global memo warmth (what earlier runs in
    #: the same process already built) and result payloads must be
    #: identical across execution environments.
    stream_memo: dict | None = None

    @property
    def values(self) -> list[float]:
        """Cycles per transaction of each valid window, in pass order --
        the same shape :class:`~repro.core.sampling.MultiWindowSample`
        feeds to the CI / WCR machinery."""
        return [w.cycles_per_transaction for w in self.windows if w.valid]

    @property
    def n_timed_windows(self) -> int:
        return sum(1 for w in self.windows if w.valid)

    @property
    def timed_transactions(self) -> int:
        """Transactions executed under the timing model (the cost that
        live sampling exists to shrink)."""
        return sum(w.transactions for w in self.windows)

    def _measured_strata(self) -> list[StratumEstimate]:
        return [s for s in self.strata if s.n > 0]

    @property
    def point_estimate(self) -> float:
        """Stratified mean over measured strata (weights renormalized
        if a stratum ended up unmeasured, e.g. on timeout)."""
        measured = self._measured_strata()
        if not measured:
            raise ValueError("no stratum holds a valid measurement")
        total = sum(s.weight for s in measured)
        return sum(s.weight / total * s.mean_value for s in measured)

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Stratified confidence interval over the measured strata."""
        measured = self._measured_strata()
        if not measured:
            raise ValueError("no stratum holds a valid measurement")
        return stratified_confidence_interval(
            [list(s.values) for s in measured],
            [s.weight for s in measured],
            confidence,
        )

    def summary(self) -> dict:
        """JSON-safe summary for ``SimulationResult.stats``."""
        data = {
            "n_intervals": self.n_intervals,
            "interval_transactions": self.interval_transactions,
            "n_strata": len(self.strata),
            "n_timed_windows": self.n_timed_windows,
            "timed_transactions": self.timed_transactions,
            "change_points": list(self.change_points),
            "strata": [
                {
                    "weight": s.weight,
                    "intervals": list(s.intervals),
                    "n": s.n,
                    "mean": s.mean_value if s.n else None,
                    "stddev": s.stddev if s.n >= 2 else None,
                }
                for s in self.strata
            ],
        }
        try:
            ci = self.interval()
        except ValueError:
            pass
        else:
            data["half_width"] = ci.half_width
            data["confidence"] = ci.confidence
        return data


def _spread(items: Sequence[int], k: int) -> list[int]:
    """``k`` evenly spaced members of ``items`` (all of them if k >= len)."""
    if k <= 0:
        return []
    if k >= len(items):
        return list(items)
    if k == 1:
        return [items[len(items) // 2]]
    span = len(items) - 1
    return [items[round(i * span / (k - 1))] for i in range(k)]


def _advance(machine, target: int, mode: str, max_time_ns: int) -> int:
    if mode == "functional":
        return machine.fast_forward_transactions(target, max_time_ns=max_time_ns)
    return machine.run_until_transactions(target, max_time_ns=max_time_ns)


def _fresh_machine(machine_factory: Callable, run: RunConfig):
    from repro.sim.rng import stream_seed

    machine = machine_factory()
    machine.hierarchy.seed_perturbation(stream_seed(run.seed, "perturbation"))
    return machine


def _survey(
    machine_factory: Callable,
    run: RunConfig,
    *,
    n_intervals: int,
    interval_transactions: int,
) -> tuple[list[dict[str, float]], bool]:
    """The scout pass: functional fast-forward over the measured region
    with a signature probe attached; always functional (its whole point
    is costing no timing model), regardless of the warm-up mode the
    measurement passes will pay."""
    from repro.probes.bus import ProbeBus
    from repro.probes.collectors import PhaseSignatureProbe

    machine = _fresh_machine(machine_factory, run)
    if run.warmup_transactions:
        machine.fast_forward_transactions(
            machine.completed_transactions + run.warmup_transactions,
            max_time_ns=run.max_time_ns,
        )
    origin = machine.completed_transactions
    probe = PhaseSignatureProbe(interval_transactions)
    bus = ProbeBus()
    bus.attach(probe)
    machine.attach_probes(bus)
    try:
        machine.fast_forward_transactions(
            origin + n_intervals * interval_transactions,
            max_time_ns=run.max_time_ns,
        )
    finally:
        machine.detach_probes()
    return probe.signatures, machine.timed_out


def _measure_intervals(
    machine_factory: Callable,
    config: SystemConfig,
    run: RunConfig,
    placements: Sequence[tuple[int, int]],
    *,
    interval_transactions: int,
    warmup_mode: str,
) -> tuple[list[LiveWindow], bool]:
    """One measurement pass: fast-forward functionally between the
    chosen intervals, run each under the timing model.

    ``placements`` is ``(interval_index, stratum_index)`` pairs, sorted
    ascending by interval.  A timed window never straddles a
    fast-forward re-arm: the window's clock span starts *after* the
    skip's event-loop re-arm and stops exactly at the target
    transaction count (both engines stop exactly on target), so each
    transaction is attributed to at most one window.
    """
    machine = _fresh_machine(machine_factory, run)
    if run.warmup_transactions:
        _advance(
            machine,
            machine.completed_transactions + run.warmup_transactions,
            warmup_mode,
            run.max_time_ns,
        )
    origin = machine.completed_transactions
    windows: list[LiveWindow] = []
    for interval_index, stratum_index in placements:
        if machine.timed_out:
            break
        window_start = origin + interval_index * interval_transactions
        if machine.completed_transactions < window_start:
            machine.fast_forward_transactions(
                window_start, max_time_ns=run.max_time_ns
            )
            if machine.timed_out:
                break
        start_txns = machine.completed_transactions
        start_ns = machine.clock.now
        end_ns = machine.run_until_transactions(
            start_txns + interval_transactions, max_time_ns=run.max_time_ns
        )
        measured = machine.completed_transactions - start_txns
        windows.append(
            LiveWindow(
                interval=interval_index,
                stratum=stratum_index,
                start_ns=start_ns,
                end_ns=end_ns,
                transactions=measured,
                cycles_per_transaction=(
                    (end_ns - start_ns) * config.n_cpus / measured
                    if measured
                    else 0.0
                ),
            )
        )
    return windows, machine.timed_out


def live_window_sample(
    config: SystemConfig,
    workload,
    run: RunConfig,
    *,
    n_intervals: int,
    budget_windows: int | None = None,
    interval_transactions: int | None = None,
    pilot_windows: int = LIVE_PILOT_WINDOWS,
    target_fraction: float | None = None,
    confidence: float = 0.95,
    warmup_mode: str = "functional",
    checkpoint=None,
    machine_factory: Callable | None = None,
    detector_kwargs: dict | None = None,
    merge_threshold: float = STRATUM_MERGE_THRESHOLD,
) -> LiveSample:
    """Survey, detect, stratify, and measure one seed's execution.

    The measured region is ``n_intervals`` candidate windows of
    ``interval_transactions`` (default ``run.measured_transactions``)
    transactions each, after the usual warm-up leg.  Three passes run
    from identical initial conditions (fresh machine per pass, same
    perturbation seed):

    1. a functional scout collecting one signature per interval;
    2. pilot windows -- up to ``pilot_windows`` evenly spread timed
       windows per detected stratum;
    3. the remaining budget, Neyman-allocated by pilot variance --
       stopped early once the projected CI half-width falls below
       ``target_fraction`` of the pilot point estimate (spend
       everything when ``target_fraction`` is ``None``).

    ``budget_windows`` (default half the intervals, min 2) caps total
    timed windows; it is a *budget*, and live sampling's value is
    spending less of it than a fixed cadence needs for the same
    precision.  ``warmup_mode`` governs the warm-up leg of measurement
    passes only; inter-window skips and the scout are always
    functional.

    ``machine_factory`` overrides machine construction (the fan-out
    engine passes its resident's ``materialize``); it must return a
    *fresh* machine with fresh workload state on every call.
    """
    if n_intervals < 2:
        raise ValueError("live sampling needs at least two intervals")
    if interval_transactions is None:
        interval_transactions = run.measured_transactions
    if interval_transactions <= 0:
        raise ValueError("interval_transactions must be positive")
    if budget_windows is None:
        budget_windows = max(2, round(n_intervals * LIVE_BUDGET_FRACTION))
    budget_windows = min(budget_windows, n_intervals)
    if budget_windows < 2:
        raise ValueError("budget_windows must be at least 2 (variance needs two)")
    if pilot_windows < 1:
        raise ValueError("pilot_windows must be at least 1")
    if warmup_mode not in ("timed", "functional"):
        raise ValueError(f"unknown warm-up mode {warmup_mode!r}")
    if target_fraction is not None and target_fraction <= 0:
        raise ValueError("target_fraction must be positive")

    if machine_factory is None:
        if workload is None:
            raise ValueError("need a workload or a machine_factory")
        from repro.core.request import WorkloadSpec
        from repro.system.machine import Machine

        spec = WorkloadSpec.resolve(workload)

        def machine_factory():
            # Each pass needs untouched workload state, so the spec is
            # re-instantiated per call rather than reusing the caller's
            # (possibly shared) instance.
            fresh = spec.make()
            if checkpoint is not None:
                return checkpoint.materialize(config, workload=fresh)
            return Machine(config, fresh)

    # The three passes replay one region from identical initial
    # conditions, which is exactly the shape the transaction-stream memo
    # (repro.workloads.base) exploits: the scout builds each op list
    # once and the measurement passes reuse it.  Record the delta so the
    # sample reports its own stream-generation savings.
    from repro.workloads.base import stream_memo_enabled, stream_memo_stats

    memo_before = stream_memo_stats().as_dict() if stream_memo_enabled() else None

    # -- pass 1: functional scout --------------------------------------
    signatures, scout_timed_out = _survey(
        machine_factory,
        run,
        n_intervals=n_intervals,
        interval_transactions=interval_transactions,
    )
    if not signatures:
        raise ValueError(
            "survey pass completed no full interval; the workload is "
            "shorter than one interval after warm-up"
        )
    n_intervals = len(signatures)  # workload may have ended early
    budget_windows = min(budget_windows, n_intervals)

    segments, change_points = detect_phases(
        signatures, **(detector_kwargs or {})
    )
    strata = stratify(segments, merge_threshold=merge_threshold)
    weights = [stratum.size / n_intervals for stratum in strata]

    # -- pass 2: pilots ------------------------------------------------
    desired = [min(pilot_windows, stratum.size) for stratum in strata]
    while sum(desired) > budget_windows:
        # Trim the largest pilot count first (value-based, then latest
        # stratum) so every stratum keeps a window as long as possible.
        h = max(range(len(strata)), key=lambda i: (desired[i], i))
        desired[h] -= 1
    pilot_picks = [
        _spread(sorted(stratum.intervals), desired[h])
        for h, stratum in enumerate(strata)
    ]
    placements = sorted(
        (interval, h) for h, picks in enumerate(pilot_picks) for interval in picks
    )
    pilot_result, pilot_timed_out = _measure_intervals(
        machine_factory,
        config,
        run,
        placements,
        interval_transactions=interval_transactions,
        warmup_mode=warmup_mode,
    )
    windows = list(pilot_result)

    values_by_stratum: list[list[float]] = [[] for _ in strata]
    for window in windows:
        if window.valid:
            values_by_stratum[window.stratum].append(window.cycles_per_transaction)

    # -- pass 3: Neyman allocation of the remaining budget -------------
    spent = len(windows)
    remaining = budget_windows - spent
    alloc_timed_out = False
    if remaining > 0 and not pilot_timed_out:
        measured_stds = [
            sample_stddev(values) if len(values) >= 2 else None
            for values in values_by_stratum
        ]
        known = [s for s in measured_stds if s is not None]
        fallback = max(known) if known else 0.0
        stds = [s if s is not None else fallback for s in measured_stds]
        capacities = [
            len(stratum.intervals) - len(pilot_picks[h])
            for h, stratum in enumerate(strata)
        ]
        counts = [len(values) for values in values_by_stratum]
        extra = remaining
        if target_fraction is not None:
            measured_weight = sum(
                w for w, n in zip(weights, counts) if n > 0
            )
            estimate = (
                sum(
                    w / measured_weight * mean(values)
                    for w, values in zip(weights, values_by_stratum)
                    if values
                )
                if measured_weight
                else 0.0
            )
            if estimate:
                target = target_fraction * abs(estimate)
                for candidate in range(remaining + 1):
                    allocation = _capped_allocation(
                        candidate, weights, stds, capacities
                    )
                    projected = [
                        n + a for n, a in zip(counts, allocation)
                    ]
                    if (
                        _projected_half_width(
                            weights, stds, projected, confidence
                        )
                        <= target
                    ):
                        extra = candidate
                        break
        allocation = _capped_allocation(extra, weights, stds, capacities)
        extra_picks = []
        for h, stratum in enumerate(strata):
            unmeasured = sorted(
                set(stratum.intervals) - set(pilot_picks[h])
            )
            for interval in _spread(unmeasured, allocation[h]):
                extra_picks.append((interval, h))
        if extra_picks:
            extra_result, alloc_timed_out = _measure_intervals(
                machine_factory,
                config,
                run,
                sorted(extra_picks),
                interval_transactions=interval_transactions,
                warmup_mode=warmup_mode,
            )
            windows.extend(extra_result)
            for window in extra_result:
                if window.valid:
                    values_by_stratum[window.stratum].append(
                        window.cycles_per_transaction
                    )

    estimates = [
        StratumEstimate(
            index=h,
            intervals=tuple(sorted(stratum.intervals)),
            weight=weights[h],
            values=tuple(values_by_stratum[h]),
        )
        for h, stratum in enumerate(strata)
    ]
    memo_delta = None
    if memo_before is not None:
        after = stream_memo_stats()
        hits = after.hits - memo_before["hits"]
        misses = after.misses - memo_before["misses"]
        memo_delta = {
            "hits": hits,
            "misses": misses,
            "ops_reused": after.ops_reused - memo_before["ops_reused"],
            "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        }
    return LiveSample(
        windows=windows,
        strata=estimates,
        change_points=change_points,
        n_intervals=n_intervals,
        interval_transactions=interval_transactions,
        n_cpus=config.n_cpus,
        seed=run.seed,
        timed_out=scout_timed_out or pilot_timed_out or alloc_timed_out,
        stream_memo=memo_delta,
    )


def measure_live(
    machine_factory: Callable,
    config: SystemConfig,
    run: RunConfig,
    *,
    warmup_mode: str = "timed",
) -> "SimulationResult":
    """Execute one live-sampled run and shape it as a ``SimulationResult``.

    This is the ``sampling_mode="live"`` counterpart of
    :func:`repro.system.simulation.measure_machine`, and the body
    :func:`repro.core.request.execute_request` and the fan-out engine
    dispatch to.  The run's measured region (``run.measured_transactions``
    transactions) is divided into up to :data:`LIVE_INTERVALS` candidate
    windows; the sampler times at most :data:`LIVE_BUDGET_FRACTION` of
    them, stopping earlier when the projected CI half-width reaches
    :data:`LIVE_TARGET_FRACTION`.

    The result's ``cycles_per_transaction`` is the *stratified estimate*
    of the whole region; ``elapsed_ns``/``measured_transactions``
    describe only the timed windows (the run's actual timing-model
    cost), and ``stats["livesample"]`` carries the full survey /
    stratification / allocation record.
    """
    from repro.system.simulation import SimulationResult

    n_intervals = min(LIVE_INTERVALS, run.measured_transactions)
    if n_intervals < 2:
        raise ValueError(
            "live sampling needs run.measured_transactions >= 2 "
            "(the region must divide into at least two intervals)"
        )
    interval_transactions = max(1, run.measured_transactions // n_intervals)
    sample = live_window_sample(
        config,
        None,
        run,
        n_intervals=n_intervals,
        interval_transactions=interval_transactions,
        target_fraction=LIVE_TARGET_FRACTION,
        warmup_mode=warmup_mode,
        machine_factory=machine_factory,
    )
    valid = [w for w in sample.windows if w.valid]
    if not valid:
        raise ValueError(
            "live sampling completed no transactions "
            "(workload finished during warm-up, or the time budget expired)"
        )
    return SimulationResult(
        cycles_per_transaction=sample.point_estimate,
        elapsed_ns=sum(w.end_ns - w.start_ns for w in valid),
        measured_transactions=sum(w.transactions for w in valid),
        start_ns=min(w.start_ns for w in valid),
        end_ns=max(w.end_ns for w in valid),
        n_cpus=config.n_cpus,
        seed=run.seed,
        timed_out=sample.timed_out,
        stats={"livesample": sample.summary()},
    )
