"""Campaign-service benchmark: queue + worker-fleet throughput.

Measures runs/sec for draining one submitted campaign with 1 vs N real
worker processes (``python -m repro campaign worker --drain``) sharing
a sqlite-backed store and one lease queue -- the deployment the
distributed campaign service targets.  The timed region covers the
whole service path: claim transactions, heartbeats, simulation, store
writes, and completion reports.

Each fleet size drains its own freshly submitted copy of the same grid
into its own store, and the stores are asserted byte-identical
afterwards -- the scaling number is only meaningful if every fleet
computes the same bytes.

Writes ``BENCH_service.json`` at the repo root.  Usage::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --smoke

``--smoke`` runs a tiny grid at 1 vs 4 workers and gates on completion,
zero quarantined cells, and cross-fleet digest equality (CI); it does
not write the JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.config import RunConfig, SystemConfig
from repro.core.runner import WorkloadSpec
from repro.campaign import CampaignSpec
from repro.service import WorkQueue, enumerate_cells, spec_to_dict
from repro.store import RunStore

REPO = Path(__file__).resolve().parent.parent
OUT_PATH = REPO / "BENCH_service.json"

SEED_BASE = 100
MAX_TIME_NS = 10**13


def grid_spec(*, n_cpus, measured, warmup, n_seeds) -> CampaignSpec:
    base = SystemConfig(n_cpus=n_cpus)
    return CampaignSpec(
        configs=[("base", base), ("dram=200", base.with_dram_latency(200))],
        workloads=[WorkloadSpec.resolve("oltp")],
        run=RunConfig(
            measured_transactions=measured,
            warmup_transactions=warmup,
            seed=SEED_BASE,
            max_time_ns=MAX_TIME_NS,
        ),
        n_runs=n_seeds,
        name="bench-service",
    )


def drain_with_fleet(spec: CampaignSpec, root: Path, n_workers: int):
    """Submit the grid to a fresh store and drain it with real worker
    processes; returns (elapsed seconds, the store)."""
    store = RunStore(root, backend="sqlite")
    queue = WorkQueue(store.root / "queue.sqlite")
    campaign_id = queue.submit(
        spec.name, spec_to_dict(spec), enumerate_cells(spec, store)
    )
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    command = [
        sys.executable, "-m", "repro", "campaign", "worker",
        "--store", str(store.root), "--store-backend", "sqlite",
        "--queue", str(queue.path), "--drain", "--quiet", "--poll", "0.05",
    ]
    start = time.perf_counter()
    workers = [subprocess.Popen(command, env=env) for _ in range(n_workers)]
    for worker in workers:
        worker.wait(timeout=1800)
        if worker.returncode != 0:
            raise RuntimeError(f"worker exited with {worker.returncode}")
    elapsed = time.perf_counter() - start
    counts = queue.counts(campaign_id)
    if not queue.is_done(campaign_id) or counts["quarantined"]:
        raise RuntimeError(f"campaign did not drain cleanly: {counts}")
    return elapsed, store


def digests_of(store: RunStore) -> dict:
    return {key: store.get_payload(key) for key in store.keys()}


def measure_fleets(spec: CampaignSpec, fleet_sizes) -> dict:
    n_cells = len(spec.configs) * len(spec.workloads) * spec.n_runs
    fleets = {}
    reference = None
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        for n_workers in fleet_sizes:
            elapsed, store = drain_with_fleet(
                spec, Path(tmp) / f"fleet-{n_workers}", n_workers
            )
            digests = digests_of(store)
            if len(digests) != n_cells:
                raise RuntimeError(
                    f"{n_workers}-worker fleet stored {len(digests)} of "
                    f"{n_cells} runs"
                )
            if reference is None:
                reference = digests
            elif digests != reference:
                raise RuntimeError(
                    f"{n_workers}-worker fleet diverged from 1-worker bytes"
                )
            fleets[n_workers] = elapsed
            print(
                f"{n_workers} worker(s): {elapsed:6.2f}s "
                f"({n_cells / elapsed:5.1f} runs/s)"
            )
    return fleets


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="fleet size to compare against a single worker",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny 1-vs-4-worker gate (CI); writes no JSON",
    )
    args = parser.parse_args()

    if args.smoke:
        spec = grid_spec(n_cpus=4, measured=20, warmup=50, n_seeds=6)
    else:
        spec = grid_spec(n_cpus=8, measured=30, warmup=500, n_seeds=12)
    n_cells = len(spec.configs) * len(spec.workloads) * spec.n_runs
    fleet_sizes = (1, args.workers)

    try:
        fleets = measure_fleets(spec, fleet_sizes)
    except RuntimeError as exc:
        print(f"SMOKE FAIL: {exc}" if args.smoke else f"FAIL: {exc}")
        return 1

    scaling = fleets[1] / fleets[args.workers]
    if args.smoke:
        print(
            f"SMOKE PASS: {n_cells} cells drained by both fleets, "
            f"identical bytes, {args.workers}-worker scaling {scaling:.2f}x"
        )
        return 0

    doc = {
        "scenario": {
            "workload": "oltp",
            "configs": [label for label, _ in spec.configs],
            "n_cpus": spec.configs[0][1].n_cpus,
            "warmup_transactions": spec.run.warmup_transactions,
            "measured_transactions": spec.run.measured_transactions,
            "n_cells": n_cells,
            "store_backend": "sqlite",
            "note": (
                "each fleet drains a freshly submitted copy of the grid "
                "through real `campaign worker --drain` processes; timed "
                "region includes claims, heartbeats, and store writes"
            ),
        },
        "fleets": {
            str(n): {
                "time_s": round(t, 3),
                "runs_per_sec": round(n_cells / t, 2),
            }
            for n, t in fleets.items()
        },
        "scaling": round(scaling, 2),
        "bytes_identical_across_fleets": True,
    }
    print(
        f"\n1 worker: {doc['fleets']['1']['runs_per_sec']:.1f} runs/s   "
        f"{args.workers} workers: "
        f"{doc['fleets'][str(args.workers)]['runs_per_sec']:.1f} runs/s   "
        f"scaling: {scaling:.2f}x"
    )
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
