"""Full-system assembly: the machine, the measurement protocol, and
checkpointing.

- :mod:`repro.system.machine` -- the event-driven execution loop that
  binds processor models, the memory hierarchy, the OS model and the
  workload programs into one deterministic 16-node target machine.
- :mod:`repro.system.simulation` -- the measurement protocol: warm up,
  then measure the simulated time to complete a fixed number of
  transactions (paper section 3.1), reporting cycles per transaction.
- :mod:`repro.system.checkpoint` -- full-state capture/restore, the
  equivalent of Simics checkpoints (paper section 3.2.2), used to start
  runs from identical initial conditions and from multiple points in a
  workload's lifetime.
"""

from repro.system.checkpoint import Checkpoint, make_checkpoints, warm_checkpoint
from repro.system.machine import Machine, SimulationStall
from repro.system.simulation import SimulationResult, run_simulation

__all__ = [
    "Checkpoint",
    "make_checkpoints",
    "warm_checkpoint",
    "Machine",
    "SimulationStall",
    "SimulationResult",
    "run_simulation",
]
