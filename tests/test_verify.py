"""Tests for the runtime verification harness (repro.verify).

Two halves:

- **Positive**: real runs under every checker come back clean, fuzz
  cases double-run to identical digests, differential checks agree, the
  CLI exits 0.
- **Negative** (the part that proves the checkers check anything):
  deliberately corrupt a live machine -- a second Modified copy of a
  block, a stolen mutex, a falsified counter -- and assert the matching
  checker reports it.  A verifier that cannot see injected bugs is
  worse than none.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.memory.coherence import MOSIState
from repro.osmodel.thread import ThreadState
from repro.verify import (
    InvariantViolation,
    attach_invariants,
    check_checkpoint_convergence,
    check_core_model_agreement,
    generate_case,
    run_fuzz,
    run_verify,
)
from repro.verify.fuzz import run_case
from repro.workloads.registry import make_workload
from tests.conftest import small_machine

MAX_NS = 10**13


def checked_machine(**kwargs):
    machine = small_machine(**kwargs)
    return machine, attach_invariants(machine)


class TestInvariantsOnRealRuns:
    @pytest.mark.parametrize("protocol", ["mosi", "mesi", "moesi"])
    def test_clean_on_contended_run(self, protocol):
        from repro.system.machine import Machine

        config = SystemConfig(n_cpus=4).with_protocol(protocol)
        machine = Machine(config, make_workload("oltp", threads_per_cpu=2))
        machine.hierarchy.seed_perturbation(3)
        suite = attach_invariants(machine)
        machine.run_until_transactions(30, max_time_ns=MAX_NS)
        assert suite.finalize() == []
        suite.assert_clean()

    def test_clean_on_barrier_workload(self):
        machine, suite = checked_machine(
            workload=make_workload("barnes"), n_cpus=4
        )
        machine.run_until_transactions(1, max_time_ns=MAX_NS)
        assert suite.finalize() == []

    def test_checked_run_is_bit_identical(self):
        def run(checked):
            machine = small_machine(n_cpus=4, seed_value=11)
            if checked:
                attach_invariants(machine)
            end = machine.run_until_transactions(25, max_time_ns=MAX_NS)
            return (end, machine.clock.now, machine.hierarchy.stats)

        assert run(False) == run(True)

    def test_finalize_is_idempotent(self):
        machine, suite = checked_machine()
        machine.run_until_transactions(5, max_time_ns=MAX_NS)
        assert suite.finalize() == suite.finalize()


class TestInjectedBugs:
    def warm(self, **kwargs):
        machine = small_machine(**kwargs)
        machine.run_until_transactions(10, max_time_ns=MAX_NS)
        return machine

    def test_second_modified_copy_caught(self):
        """The SWMR violation: two nodes both holding a block Modified."""
        machine = self.warm(n_cpus=4)
        hierarchy = machine.hierarchy
        block = next(
            b
            for node in range(4)
            for b in hierarchy.l2[node].resident_blocks()
            if hierarchy.l2[node].peek(b).state == MOSIState.M.value
        )
        owner = hierarchy._owner[block]
        thief = (owner + 1) % 4
        if hierarchy.l2[thief].peek(block) is None:
            hierarchy.l2[thief].insert(block, MOSIState.M.value, dirty=True)
        else:
            hierarchy.l2[thief].peek(block).state = MOSIState.M.value
        suite = attach_invariants(machine)
        suite.coherence.check_block(block)
        assert any("multiple writable copies" in v for v in suite.violations)
        with pytest.raises(InvariantViolation):
            suite.assert_clean()

    def test_directory_owner_mismatch_caught(self):
        machine = self.warm(n_cpus=4)
        hierarchy = machine.hierarchy
        block, owner = next(iter(hierarchy._owner.items()))
        hierarchy._owner[block] = (owner + 1) % 4
        suite = attach_invariants(machine)
        suite.coherence.check_block(block)
        assert any("directory owner" in v for v in suite.violations)

    def test_sharer_set_corruption_caught_at_finalize(self):
        machine = self.warm(n_cpus=4)
        hierarchy = machine.hierarchy
        block = next(iter(hierarchy._sharers))
        hierarchy._sharers[block].add(99)  # phantom sharer
        suite = attach_invariants(machine)
        assert suite.finalize() != []

    def test_stolen_mutex_caught(self):
        """A lock held by a thread id that does not exist."""
        machine = self.warm(n_cpus=4)
        machine.locks.mutex(12345).holder = 424242
        suite = attach_invariants(machine)
        violations = suite.finalize()
        assert any("unknown" in v and "[lock]" in v for v in violations)

    def test_waiter_in_wrong_state_caught(self):
        machine = self.warm(n_cpus=4)
        mutex = machine.locks.mutex(12346)
        mutex.holder = 0
        ready_tid = next(
            t.tid
            for t in machine.scheduler.threads.values()
            if t.state is not ThreadState.BLOCKED_LOCK
        )
        mutex.waiters.append(ready_tid)
        suite = attach_invariants(machine)
        violations = suite.finalize()
        assert any("[lock]" in v and "waiter" in v for v in violations)

    def test_lost_wakeup_caught(self):
        """A free lock with a queued waiter and no grant in flight."""
        machine = self.warm(n_cpus=4)
        victim = next(iter(machine.scheduler.threads))
        mutex = machine.locks.mutex(12347)
        mutex.waiters.append(victim)
        thread = machine.scheduler.threads[victim]
        thread.state = ThreadState.BLOCKED_LOCK
        thread.blocked_on_lock = 999999  # waits on a *different* lock
        suite = attach_invariants(machine)
        violations = suite.finalize()
        assert any("lost wakeup" in v for v in violations)

    def test_falsified_hit_counter_caught(self):
        machine = self.warm()
        machine.hierarchy.stats.l1_hits += 1
        suite = attach_invariants(machine)
        violations = suite.finalize()
        assert any("[stats]" in v and "accesses" in v for v in violations)

    def test_falsified_thread_transactions_caught(self):
        machine = self.warm()
        next(iter(machine.scheduler.threads.values())).stats.transactions += 3
        suite = attach_invariants(machine)
        assert any("per-thread transactions" in v for v in suite.finalize())

    def test_impossible_cpu_time_caught(self):
        machine = self.warm()
        suite = attach_invariants(machine)
        machine.run_until_transactions(15, max_time_ns=MAX_NS)
        thread = next(iter(machine.scheduler.threads.values()))
        thread.stats.cpu_time_ns += 10**15
        assert any("[sched]" in v for v in suite.finalize())

    def test_backwards_op_time_caught(self):
        machine = self.warm()
        suite = attach_invariants(machine)
        suite.time.on_op(1000, 0, 0, (0, 5, 0x1000))
        suite.time.on_op(500, 0, 0, (0, 5, 0x1000))
        assert any("ran backwards" in v for v in suite.violations)

    def test_violation_log_is_bounded(self):
        from repro.verify.invariants import MAX_VIOLATIONS

        machine = self.warm()
        suite = attach_invariants(machine)
        for i in range(MAX_VIOLATIONS + 50):
            suite.time.on_op(1000 - i, 0, 0, (0, 5, 0x1000))
        suite.time.finalize()
        assert len(suite.time.violations) == MAX_VIOLATIONS + 1
        assert "suppressed" in suite.time.violations[-1]


class TestFuzzer:
    def test_case_generation_is_deterministic(self):
        assert [generate_case(5, i) for i in range(10)] == [
            generate_case(5, i) for i in range(10)
        ]

    def test_different_seeds_differ(self):
        a = [generate_case(1, i) for i in range(8)]
        b = [generate_case(2, i) for i in range(8)]
        assert a != b

    def test_generated_configs_are_valid(self):
        for i in range(30):
            case = generate_case(11, i)
            config = case.config  # construction already validated
            assert config.l1d.size_bytes % (
                config.l1d.associativity * config.l1d.block_bytes
            ) == 0
            assert config.coherence_protocol in ("mosi", "mesi", "moesi")
            assert case.transactions >= 1
            assert "case" in case.describe()

    def test_double_run_matches(self):
        result = run_case(generate_case(1, 0))
        assert result.ok, result.describe_failure()
        assert result.digest_checked == result.digest_bare
        assert result.violations == []

    def test_small_sweep_clean(self):
        report = run_fuzz(4, seed=21)
        assert report.ok, report.render()
        assert len(report.results) == 4
        assert "4 cases" in report.render()


class TestDifferential:
    def test_core_models_agree(self):
        result = check_core_model_agreement(
            workloads=("oltp",), transactions=6
        )
        assert result.ok, result.render()

    def test_checkpoint_converges(self):
        result = check_checkpoint_convergence(
            warm_transactions=8, continue_transactions=8
        )
        assert result.ok, result.render()


class TestRunnerAndCLI:
    def test_run_verify_passes(self):
        report = run_verify(fuzz=2, seed=13)
        assert report.ok, report.render()
        assert "verify: PASS" in report.render()
        assert report.fuzz is not None

    def test_cli_exit_code_zero(self, capsys):
        from repro.cli import main

        assert main(["verify", "--fuzz", "1", "--quiet"]) == 0
        assert "verify: PASS" in capsys.readouterr().out

    def test_cli_json(self, capsys):
        import json

        from repro.cli import main

        assert main(["verify", "--quiet", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["scenarios"]) >= 8
        assert payload["fuzz"] is None
