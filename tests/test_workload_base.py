"""Tests for the Workload factory base class."""

import pytest

from repro.workloads.base import Workload, WorkloadClock
from repro.workloads.registry import make_workload


class TestScaled:
    def test_identity_at_one(self):
        assert make_workload("oltp").scaled(40) == 40

    def test_scales_up(self):
        assert make_workload("oltp", scale=2.0).scaled(40) == 80

    def test_never_below_one(self):
        assert make_workload("oltp", scale=0.001).scaled(5) == 1

    def test_fractional(self):
        assert make_workload("oltp", scale=0.5).scaled(9) == 4


class TestBranchContext:
    def test_threads_share_code_seed(self):
        """Same-workload threads run the same program text, so their
        predictor-visible PC space must coincide."""
        workload = make_workload("oltp")
        assert (
            workload.make_branch_context(0).code_seed
            == workload.make_branch_context(7).code_seed
        )

    def test_workloads_have_distinct_code(self):
        oltp = make_workload("oltp").make_branch_context(0)
        apache = make_workload("apache").make_branch_context(0)
        assert oltp.code_seed != apache.code_seed

    def test_profile_follows_class_attributes(self):
        barnes = make_workload("barnes")
        ctx = barnes.make_branch_context(0)
        assert ctx.static_branches == barnes.static_branches
        assert ctx.taken_bias_milli == barnes.taken_bias_milli

    def test_scientific_code_more_predictable(self):
        barnes = make_workload("barnes").make_branch_context(0)
        oltp = make_workload("oltp").make_branch_context(0)
        assert barnes.flip_noise_milli < oltp.flip_noise_milli
        assert barnes.static_branches < oltp.static_branches


class TestThreadCounts:
    def test_scales_with_cpus(self):
        workload = make_workload("oltp")
        assert workload.n_threads(4) == 4 * workload.threads_per_cpu
        assert workload.n_threads(16) == 16 * workload.threads_per_cpu

    def test_base_class_requires_make_program(self):
        with pytest.raises(NotImplementedError):
            Workload().make_program(0, WorkloadClock())

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            Workload(scale=-1.0)


class TestWorkloadSeeds:
    def test_seed_changes_content_stream(self):
        clock_a, clock_b = WorkloadClock(), WorkloadClock()
        a = make_workload("oltp", seed=1).make_program(0, clock_a)
        b = make_workload("oltp", seed=2).make_program(0, clock_b)
        assert a.next_ops(None) != b.next_ops(None)

    def test_same_seed_same_stream(self):
        clock_a, clock_b = WorkloadClock(), WorkloadClock()
        a = make_workload("oltp", seed=1).make_program(0, clock_a)
        b = make_workload("oltp", seed=1).make_program(0, clock_b)
        assert a.next_ops(None) == b.next_ops(None)
