"""Memory-system simulator.

Models the paper's target memory system (section 3.2.1/3.2.3): split L1
instruction and data caches and a unified L2 per node, kept coherent by a
table-driven MOSI invalidation-based snooping protocol over a two-level
crossbar, backed by DRAM.

The public entry point is :class:`repro.memory.hierarchy.MemoryHierarchy`,
which owns every cache, the interconnect, the DRAM model and the
perturbation hook, and exposes a single ``access`` call to processor
models.
"""

from repro.memory.block import block_address, block_of
from repro.memory.cache import CacheLine, SetAssociativeCache
from repro.memory.coherence import (
    CoherenceError,
    MOSIState,
    ProtocolEvent,
    TRANSITIONS,
    Transition,
)
from repro.memory.dram import MemoryController
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.interconnect import Crossbar

__all__ = [
    "block_address",
    "block_of",
    "CacheLine",
    "SetAssociativeCache",
    "CoherenceError",
    "MOSIState",
    "ProtocolEvent",
    "TRANSITIONS",
    "Transition",
    "MemoryController",
    "AccessResult",
    "MemoryHierarchy",
    "Crossbar",
]
