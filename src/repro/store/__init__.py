"""Persistent, content-addressed storage for simulation runs.

The paper's methodology multiplies cost by N runs per configuration;
this package makes those runs *durable*: every completed simulation is
keyed by its complete cause (:mod:`repro.store.keys`), serialized to
JSON (:mod:`repro.store.serialize`), and persisted under a cache
directory with an append-only journal (:mod:`repro.store.store`).
``run_space(..., store=...)`` and :mod:`repro.campaign` consult the
store before executing, so interrupted experiments resume where they
stopped and repeated studies reuse prior measurements.
"""

from repro.store.backends import (
    STORE_BACKEND_ENV,
    DirBackend,
    SQLiteBackend,
    StoreBackend,
    default_backend_kind,
    make_backend,
)
from repro.store.keys import KEY_VERSION, canonical_json, digest, run_key, warm_key
from repro.store.serialize import (
    analysis_to_dict,
    run_config_from_dict,
    run_config_to_dict,
    run_sample_from_dict,
    run_sample_to_dict,
    simulation_result_from_dict,
    simulation_result_to_dict,
    system_config_from_dict,
    system_config_to_dict,
)
from repro.store.store import STORE_DIR_ENV, RunStore, default_store_dir

__all__ = [
    "KEY_VERSION",
    "canonical_json",
    "digest",
    "run_key",
    "warm_key",
    "analysis_to_dict",
    "run_config_from_dict",
    "run_config_to_dict",
    "run_sample_from_dict",
    "run_sample_to_dict",
    "simulation_result_from_dict",
    "simulation_result_to_dict",
    "system_config_from_dict",
    "system_config_to_dict",
    "STORE_DIR_ENV",
    "STORE_BACKEND_ENV",
    "RunStore",
    "StoreBackend",
    "DirBackend",
    "SQLiteBackend",
    "default_backend_kind",
    "make_backend",
    "default_store_dir",
    "resolve_store",
]


def resolve_store(store, *, backend=None):
    """Normalize a store argument into a :class:`RunStore` (or ``None``).

    Accepts an existing :class:`RunStore` (returned as-is), a root path
    (``str``/``Path``), or ``None``.  ``backend`` applies only when a
    path is given; ``None`` honours ``$REPRO_STORE_BACKEND``.  This is
    how ``run_space``, the CLI, and the campaign service all turn a
    ``--store``/``--store-backend`` pair into the same store object.
    """
    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store, backend=backend)
