"""Golden-digest determinism tests.

The hot-path refactor (integer op ISA, dispatch tables, tuple events,
allocation-free access fast path) must be behavior-preserving
*bit-for-bit*: same (config, seed) => same transaction log and final
hierarchy statistics.  These digests were generated from the
pre-refactor ``main`` and committed; any change to them means the
simulation's observable behaviour changed, which is a regression even if
every other test still passes.

The digest deliberately hashes only integers (transaction timestamps and
type ids, hierarchy counters, elapsed time) so it is stable across
Python versions and platforms.

Regenerate (only when an *intentional* behaviour change lands) with::

    PYTHONPATH=src python tests/test_golden_determinism.py --regen
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.config import RunConfig, SystemConfig
from repro.core.backend import use_backend, vector_available
from repro.system.simulation import run_simulation
from repro.workloads.registry import make_workload

#: execution backends the digests must agree under (repro.core.backend):
#: the vector backend is a strategy, not a model change, so it must
#: reproduce the python digests bit-for-bit.
BACKENDS = ("python", "vector")

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"

#: digest scenarios: name -> (workload, workload params, config builder, txns)
SCENARIOS: dict[str, dict] = {
    "oltp": {"workload": "oltp", "params": {"threads_per_cpu": 2}, "txns": 40},
    "apache": {"workload": "apache", "params": {"threads_per_cpu": 2}, "txns": 40},
    "specjbb": {"workload": "specjbb", "params": {}, "txns": 40},
    "slashcode": {"workload": "slashcode", "params": {"threads_per_cpu": 2}, "txns": 25},
    "ecperf": {"workload": "ecperf", "params": {"threads_per_cpu": 2}, "txns": 25},
    "barnes": {"workload": "barnes", "params": {}, "txns": 1},
    "ocean": {"workload": "ocean", "params": {}, "txns": 1},
    "oltp-ooo": {
        "workload": "oltp",
        "params": {"threads_per_cpu": 2},
        "txns": 25,
        "config": lambda: SystemConfig(n_cpus=4).with_rob_entries(32),
    },
    "oltp-mesi": {
        "workload": "oltp",
        "params": {"threads_per_cpu": 2},
        "txns": 25,
        "config": lambda: SystemConfig(n_cpus=4).with_protocol("mesi"),
    },
}

#: hierarchy counters folded into the digest (integer fields only)
STAT_KEYS = (
    "l1_hits",
    "l2_hits",
    "l2_misses",
    "cache_to_cache",
    "memory_fetches",
    "upgrades",
    "writebacks",
    "perturbation_total_ns",
    "block_race_stalls",
)


def golden_digest(scenario: dict, seed: int = 9) -> str:
    """Hash the run's transaction log and final hierarchy statistics."""
    config = scenario.get("config", lambda: SystemConfig(n_cpus=4))()
    workload = make_workload(scenario["workload"], **scenario["params"])
    result = run_simulation(
        config,
        workload,
        RunConfig(
            measured_transactions=scenario["txns"],
            warmup_transactions=0,
            seed=seed,
            max_time_ns=10**13,
        ),
        collect_transaction_times=True,
    )
    blob = repr(
        (
            result.elapsed_ns,
            result.measured_transactions,
            result.transaction_times,
            [(key, int(result.stats[key])) for key in STAT_KEYS],
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def load_golden() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_matches_golden_digest(name, backend):
    if backend == "vector" and not vector_available():
        pytest.skip("numpy unavailable: vector backend degenerates to python")
    golden = load_golden()
    assert name in golden, f"no golden digest for scenario {name!r}; regenerate"
    with use_backend(backend):
        digest = golden_digest(SCENARIOS[name])
    assert digest == golden[name], (
        f"scenario {name!r} diverged from the committed golden digest "
        f"under the {backend!r} backend: the simulator's observable "
        "behaviour changed for a fixed (config, seed).  If this was "
        "intentional, regenerate with "
        "`python tests/test_golden_determinism.py --regen`."
    )


def _regen() -> None:
    digests = {}
    for name in sorted(SCENARIOS):
        digests[name] = golden_digest(SCENARIOS[name])
        print(f"{name}: {digests[name]}")
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
