"""Discrete-event simulation kernel.

This package provides the deterministic foundations every other subsystem
builds on:

- :mod:`repro.sim.rng` -- counter-based pseudo-random number streams.  All
  randomness in the simulator flows through these streams so that a run is a
  pure function of (configuration, seed).
- :mod:`repro.sim.events` -- the event queue with deterministic
  tie-breaking, and the simulation clock.
"""

from repro.sim.events import Event, EventQueue, SimulationClock
from repro.sim.rng import RandomStream, splitmix64, stream_seed

__all__ = [
    "Event",
    "EventQueue",
    "SimulationClock",
    "RandomStream",
    "splitmix64",
    "stream_seed",
]
