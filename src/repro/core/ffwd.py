"""Functional fast-forward: timing-free execution of the warm-up region.

The paper's methodology multiplies every experiment by (warm-up +
measurement) per seed, and warm-up dominates: all that survives into a
checkpoint is *architectural* state -- cache/directory contents, lock
ownership, scheduler queues, thread program positions -- yet the timed
engine pays full event scheduling, interconnect/DRAM occupancy math and
per-op latency accounting to build it.  :func:`fast_forward_transactions`
executes the same workload operations through the same state-transition
code (``MemoryHierarchy.access_functional``, the real ``Scheduler`` and
``LockTable``) while skipping everything that only produces *time*:

==========================  ========================================
kept (state)                dropped (timing)
==========================  ========================================
L1/L2 contents, LRU order   per-access latency, core stall models
coherence/directory state   crossbar + DRAM occupancy, busy windows
lock holders/waiter FIFOs   perturbation draws (stream untouched)
scheduler queues, quanta    event-queue scheduling, context-switch
thread op positions, stats    and wake-up latency charging
==========================  ========================================

Time still advances -- on a fixed *functional clock* that steps one
interleave slice per round-robin sweep of the CPUs, with instruction
batches charging their nominal IPC=1 time inside a slice -- so quantum
deadlines expire, the scheduler preempts and balances, lock hand-offs
and I/O completions are ordered through a wake-up heap, and transaction
timestamps remain monotone.  The interleaving is *an* admissible one,
not the timed one: with >1 CPU, global-stream workloads (ticket order)
legitimately diverge from any particular timed run, exactly as two
timed runs with different perturbation seeds diverge.  At one CPU the
op stream is timing-independent and functional execution touches
byte-identical cache/lock state (enforced by
``repro.verify.differential.check_functional_warmup_agreement``).

On exit the machine is *re-armed* for the timed engine: the clock is
advanced to the functional time, every CPU gets an ``EV_CORE`` kick and
pending wake-ups are re-scheduled as ``EV_READY`` events (clamped to
the final time so the clock never runs backwards).  A fast-forwarded
machine can therefore be checkpointed (``Checkpoint.capture``) or
continued directly under ``run_until_transactions`` -- which is what
the multi-window sampler (:mod:`repro.core.sampling`) does.

What stays cold: the OOO model's branch-predictor tables (the branch
*stream* counter advances identically, so the stream itself is in the
same place) and the DRAM/crossbar occupancy windows.  Both are
transient micro-state that re-warms within microseconds of timed
execution -- the same trade ``Machine.from_snapshot`` makes when it
replays caches into a new geometry and leaves the L1s cold.

Probe-bus compatibility: cache probes fire per functional coherence
transaction (latency 0), lock probes fire on block/hand-off, sched
probes fire per dispatch.  Op and txn hooks fire for transaction
completions only in the timed engine's dispatch table; the functional
loop fires txn probes itself but bypasses the dispatch table, so *op*
hooks do not fire (documented; the verify checkers that consume op
events are not meaningful in functional mode -- see DESIGN.md section 9).
The cache/lock/txn hooks staying live is what the live sampler's survey
pass is built on: :mod:`repro.core.livesample` fast-forwards across the
measured region with a
:class:`~repro.probes.collectors.PhaseSignatureProbe` attached and gets
per-interval behaviour signatures for free -- phase detection without a
timing model.
"""

from __future__ import annotations

import heapq

from repro.isa import (
    OP_BARRIER,
    OP_CPU,
    OP_IO,
    OP_LOCK,
    OP_MEM,
    OP_TXN_BEGIN,
    OP_TXN_END,
    OP_UNLOCK,
    OP_YIELD,
    op_name,
)
from repro.memory.hierarchy import L1_RW_CODE as _RW
from repro.osmodel.thread import ThreadState
from repro.sim.events import EV_CORE, EV_READY

#: states in which an EV_READY-equivalent wakeup is stale (mirrors
#: Machine._handle_ready)
_WAKE_STALE = (ThreadState.READY, ThreadState.RUNNING, ThreadState.FINISHED)


def fast_forward_transactions(
    machine,
    total: int,
    *,
    max_time_ns: int,
    interleave_ns: int | None = None,
) -> int:
    """Drive ``machine`` to ``total`` machine-lifetime transactions
    functionally (see module docstring).  Returns the functional time at
    which the target completed; the machine is left re-armed for the
    timed event loop.  Mirrors ``run_until_transactions`` semantics:
    ``total`` is absolute, a drained system with live threads raises
    ``SimulationStall``, exceeding ``max_time_ns`` sets ``timed_out``.
    """
    from repro.system.machine import INTERLEAVE_NS, SimulationStall, _NEVER

    if machine.completed_transactions >= total:
        return machine.clock.now

    config = machine.config
    os_cfg = config.os
    interleave = interleave_ns or os_cfg.interleave_ns or INTERLEAVE_NS
    quantum = os_cfg.quantum_ns
    wakeup_latency = os_cfg.wakeup_latency_ns
    spin_ns = os_cfg.spin_before_block_ns
    n_cpus = config.n_cpus

    scheduler = machine.scheduler
    threads = scheduler.threads
    run_queues = scheduler.run_queues
    current = scheduler.current
    pick_next = scheduler.pick_next
    hierarchy = machine.hierarchy
    access = hierarchy.access_functional
    locks = machine.locks
    cores = machine.cores
    events = machine.events
    workload_clock = machine.workload_clock
    txn_log = machine.transaction_log
    probe_lock = machine._probe_lock
    probe_txn = machine._probe_txn
    # L1-hit fast path locals (the hit path below is the same code
    # access_functional runs, inlined; misses and RO-write hits fall
    # back to the full access, which redoes the lookup from scratch).
    hstats = hierarchy.stats
    block_bytes = hierarchy._block_bytes
    l1i_caches = hierarchy.l1i
    l1d_caches = hierarchy.l1d
    # Backend selection (repro.core.backend): the vector slice below is
    # the scalar slice with the per-op counter writes deferred into span
    # sums (flushed at every slice exit and before any rare-opcode
    # branch, i.e. before anything that could observe them) and the
    # functional_advance call inlined.  Unlike the timed vector runner
    # it needs no SimpleCore gate: functional_advance is uniform across
    # core models.  Results are bit-identical either way.
    use_vector = getattr(machine, "backend", "python") == "vector"

    # ------------------------------------------------------------------
    # Entry: absorb the pending event queue.  EV_CORE events are dropped
    # (every CPU is polled each functional round); EV_READY events move
    # to a local wake-up heap that preserves (time, FIFO) order.
    # ------------------------------------------------------------------
    wakeups: list[tuple[int, int, int]] = []
    seq = 0
    while True:
        event = events.pop()
        if event is None:
            break
        if event[2] == EV_READY:
            wakeups.append((event[0], seq, event[3]))
            seq += 1
    heapq.heapify(wakeups)

    hierarchy.set_functional(True)
    now = machine.clock.now
    target_time: int | None = None
    timed_out = False
    try:
        while machine.completed_transactions < total:
            if now > max_time_ns:
                timed_out = True
                break
            # Release due wake-ups (stale ones are dropped, as in
            # _handle_ready; a woken thread is dispatched this round).
            while wakeups and wakeups[0][0] <= now:
                _wake_time, _s, tid = heapq.heappop(wakeups)
                thread = threads[tid]
                if thread.state in _WAKE_STALE:
                    continue
                scheduler.make_ready(thread)

            did_work = False
            slice_end = now + interleave
            for cpu in range(n_cpus):
                tid = current[cpu]
                if tid is None:
                    thread = pick_next(cpu, now)
                    if thread is None:
                        continue
                else:
                    thread = threads[tid]
                did_work = True

                if use_vector:
                    seq, target_time = _vector_slice(
                        machine, cpu, thread, now, slice_end, total,
                        scheduler, run_queues, access,
                        locks, cores, workload_clock, txn_log, probe_lock,
                        probe_txn, hstats, block_bytes, l1i_caches,
                        l1d_caches, wakeups, seq, spin_ns, wakeup_latency,
                    )
                    if target_time is not None:
                        break
                    continue

                # ---- one functional slice on this CPU -----------------
                local = now
                start = now
                stats = thread.stats
                run_queue = run_queues[cpu]
                # Quantum expiry preempts only if someone waits locally;
                # queues are frozen during the slice (wake-ups go to the
                # heap), mirroring _run_slice's hoisted deadline.
                deadline = thread.quantum_deadline if run_queue else _NEVER
                functional_advance = cores[cpu].functional_advance
                branch_ctx = thread.branch_ctx
                buf = thread.op_buffer
                i = thread.op_index
                buf_len = len(buf)
                l1i = l1i_caches[cpu]
                l1i_sets = l1i._sets
                l1i_n = l1i.n_sets
                l1i_stats = l1i.stats
                l1d = l1d_caches[cpu]
                l1d_sets = l1d._sets
                l1d_n = l1d.n_sets
                l1d_stats = l1d.stats
                while True:
                    if local >= deadline:
                        thread.op_index = i
                        stats.cpu_time_ns += local - start
                        scheduler.preempt(cpu, thread)
                        break
                    if i >= buf_len:
                        thread.op_index = i
                        if not thread.refill():
                            stats.cpu_time_ns += local - start
                            scheduler.block(cpu, thread, ThreadState.FINISHED)
                            machine.live_threads -= 1
                            break
                        buf = thread.op_buffer
                        buf_len = len(buf)
                        i = 0
                    op = buf[i]
                    code = op[0]
                    if code == OP_MEM:
                        # Each data reference costs 1 ns on the
                        # functional clock: keeps slices finite for any
                        # op mix and keeps reference order sane.  The L1
                        # read-hit / RW-write-hit case is inlined
                        # (identical counters and MRU move); everything
                        # else takes the full functional access.
                        block = op[1] // block_bytes
                        lines = l1d_sets[block % l1d_n]
                        line = lines.get(block)
                        is_write = op[2]
                        if line is not None and (
                            not is_write or line.code == _RW
                        ):
                            del lines[block]
                            lines[block] = line
                            l1d_stats.hits += 1
                            if is_write:
                                line.dirty = True
                            hstats.accesses += 1
                            hstats.l1_hits += 1
                        else:
                            access(cpu, op[1], is_write, local)
                        local += 1
                        i += 1
                    elif code == OP_CPU:
                        n = op[1]
                        functional_advance(n, branch_ctx)
                        local += n
                        block = op[2] // block_bytes
                        lines = l1i_sets[block % l1i_n]
                        line = lines.get(block)
                        if line is not None:
                            del lines[block]
                            lines[block] = line
                            l1i_stats.hits += 1
                            hstats.accesses += 1
                            hstats.l1_hits += 1
                        else:
                            access(cpu, op[2], False, local, True)
                        stats.instructions += n
                        i += 1
                    elif code == OP_TXN_BEGIN:
                        i += 1
                    elif code == OP_TXN_END:
                        i += 1
                        machine.completed_transactions += 1
                        workload_clock.total_transactions += 1
                        stats.transactions += 1
                        if txn_log is not None:
                            txn_log.append((local, op[1]))
                        if probe_txn is not None:
                            probe_txn(local, thread.tid, op[1])
                        if machine.completed_transactions >= total:
                            thread.op_index = i
                            stats.cpu_time_ns += local - start
                            # Leave the thread RUNNING; finalization
                            # re-arms the CPU (mirrors _op_txn_end).
                            target_time = local
                            break
                    elif code == OP_LOCK:
                        mutex = locks.mutex(op[1])
                        access(cpu, mutex.address, True, local)
                        local += 1
                        if mutex.try_acquire(thread.tid):
                            thread.blocked_on_lock = None
                            i += 1
                        else:
                            # Spin-then-block; op NOT consumed (the
                            # woken thread re-runs the acquire and may
                            # find the lock barged).
                            local += spin_ns
                            mutex.enqueue_waiter(thread.tid)
                            thread.blocked_on_lock = mutex.lock_id
                            stats.lock_blocks += 1
                            thread.op_index = i
                            stats.cpu_time_ns += local - start
                            if probe_lock is not None:
                                probe_lock("block", local, thread.tid, mutex.lock_id)
                            scheduler.block(cpu, thread, ThreadState.BLOCKED_LOCK)
                            break
                    elif code == OP_UNLOCK:
                        mutex = locks.mutex(op[1])
                        access(cpu, mutex.address, True, local)
                        local += 1
                        next_tid = mutex.release(thread.tid)
                        i += 1
                        if next_tid is not None:
                            if probe_lock is not None:
                                probe_lock("handoff", local, next_tid, mutex.lock_id)
                            heapq.heappush(
                                wakeups, (local + wakeup_latency, seq, next_tid)
                            )
                            seq += 1
                    elif code == OP_IO:
                        i += 1
                        thread.op_index = i
                        stats.cpu_time_ns += local - start
                        scheduler.block(cpu, thread, ThreadState.BLOCKED_IO)
                        heapq.heappush(wakeups, (local + op[1], seq, thread.tid))
                        seq += 1
                        break
                    elif code == OP_BARRIER:
                        barrier = locks.barrier(op[1], op[2])
                        i += 1
                        released = barrier.arrive(thread.tid)
                        if released is None:
                            thread.op_index = i
                            stats.cpu_time_ns += local - start
                            scheduler.block(
                                cpu, thread, ThreadState.BLOCKED_BARRIER
                            )
                            break
                        wake = local + wakeup_latency
                        for other in released:
                            if other != thread.tid:
                                heapq.heappush(wakeups, (wake, seq, other))
                                seq += 1
                    elif code == OP_YIELD:
                        i += 1
                        thread.op_index = i
                        stats.cpu_time_ns += local - start
                        scheduler.preempt(cpu, thread)
                        break
                    else:
                        raise ValueError(f"unknown opcode {op_name(code)}")
                    if local >= slice_end:
                        # Slice expired; the thread stays RUNNING and
                        # continues next round.
                        thread.op_index = i
                        stats.cpu_time_ns += local - start
                        break
                if target_time is not None:
                    break
            if target_time is not None:
                break

            if not did_work:
                if wakeups:
                    # Every CPU idle: jump the functional clock to the
                    # next wake-up (entries still heaped are all > now).
                    now = wakeups[0][0]
                    continue
                if machine.live_threads > 0:
                    states = {
                        t.tid: t.state.value
                        for t in threads.values()
                        if t.state is not ThreadState.FINISHED
                    }
                    raise SimulationStall(
                        f"functional fast-forward drained with "
                        f"{machine.live_threads} live threads; states: {states}"
                    )
                break  # all threads finished before reaching the target
            now = slice_end
    finally:
        hierarchy.set_functional(False)

    # ------------------------------------------------------------------
    # Finalize: re-arm the timed event loop.  The clock advances to the
    # functional end time; every CPU gets a core kick there; leftover
    # wake-ups become EV_READY events clamped to the final time (the
    # clock cannot run backwards).
    # ------------------------------------------------------------------
    final_now = target_time if target_time is not None else now
    machine.clock.advance_to(final_now)
    machine._idle_cpus.clear()
    for cpu in range(n_cpus):
        events.schedule(final_now, EV_CORE, cpu)
    while wakeups:
        wake_time, _s, tid = heapq.heappop(wakeups)
        events.schedule(max(wake_time, final_now), EV_READY, tid)
    if timed_out:
        machine.timed_out = True
    return final_now


def _vector_slice(
    machine, cpu, thread, now, slice_end, total,
    scheduler, run_queues, access,
    locks, cores, workload_clock, txn_log, probe_lock,
    probe_txn, hstats, block_bytes, l1i_caches,
    l1d_caches, wakeups, seq, spin_ns, wakeup_latency,
):
    """One functional slice under the ``vector`` backend.

    The scalar slice loop in :func:`fast_forward_transactions` with the
    per-op counter writes deferred into span sums: an L1-hitting
    ``OP_MEM``/``OP_CPU`` op touches only the set dict (the identical
    lookup + MRU move) and integer locals; the hierarchy/l1 hit counters
    and the instruction/branch counters are flushed as sums at every
    slice exit and before any rare-opcode branch.  Misses keep the span
    open: ``access_functional`` only *adds* to the deferred counters and
    nothing observes them until the next flush point (no probe collector
    reads hierarchy stats mid-run; the verify checkers read them at
    ``finalize``).  All scheduler/lock/wakeup transitions are verbatim
    from the scalar loop, so state evolution is bit-identical.

    Returns ``(seq, target_time)`` -- ``target_time`` is None unless the
    transaction target was reached inside this slice.
    """
    from repro.system.machine import _NEVER

    local = now
    start = now
    stats = thread.stats
    run_queue = run_queues[cpu]
    deadline = thread.quantum_deadline if run_queue else _NEVER
    core = cores[cpu]
    branch_ctx = thread.branch_ctx
    buf = thread.op_buffer
    i = thread.op_index
    buf_len = len(buf)
    l1i = l1i_caches[cpu]
    l1i_sets = l1i._sets
    l1i_n = l1i.n_sets
    l1i_stats = l1i.stats
    l1d = l1d_caches[cpu]
    l1d_sets = l1d._sets
    l1d_n = l1d.n_sets
    l1d_stats = l1d.stats
    target_time = None
    # Deferred span sums (see docstring).
    d_hits = 0
    i_hits = 0
    insns = 0
    branches = 0
    while True:
        if local >= deadline:
            if d_hits or i_hits or insns:
                hits = d_hits + i_hits
                hstats.accesses += hits
                hstats.l1_hits += hits
                l1d_stats.hits += d_hits
                l1i_stats.hits += i_hits
                core.instructions_retired += insns
                stats.instructions += insns
                branch_ctx.counter += branches
            thread.op_index = i
            stats.cpu_time_ns += local - start
            scheduler.preempt(cpu, thread)
            break
        if i >= buf_len:
            thread.op_index = i
            if not thread.refill():
                if d_hits or i_hits or insns:
                    hits = d_hits + i_hits
                    hstats.accesses += hits
                    hstats.l1_hits += hits
                    l1d_stats.hits += d_hits
                    l1i_stats.hits += i_hits
                    core.instructions_retired += insns
                    stats.instructions += insns
                    branch_ctx.counter += branches
                stats.cpu_time_ns += local - start
                scheduler.block(cpu, thread, ThreadState.FINISHED)
                machine.live_threads -= 1
                break
            buf = thread.op_buffer
            buf_len = len(buf)
            i = 0
        op = buf[i]
        code = op[0]
        if code == OP_MEM:
            block = op[1] // block_bytes
            lines = l1d_sets[block % l1d_n]
            line = lines.get(block)
            is_write = op[2]
            if line is not None and (not is_write or line.code == _RW):
                del lines[block]
                lines[block] = line
                d_hits += 1
                if is_write:
                    line.dirty = True
            else:
                access(cpu, op[1], is_write, local)
            local += 1
            i += 1
        elif code == OP_CPU:
            n = op[1]
            insns += n
            branches += n // 5
            local += n
            block = op[2] // block_bytes
            lines = l1i_sets[block % l1i_n]
            line = lines.get(block)
            if line is not None:
                del lines[block]
                lines[block] = line
                i_hits += 1
            else:
                access(cpu, op[2], False, local, True)
            i += 1
        else:
            # Rare opcode: flush the span, then the scalar branch logic
            # verbatim (probes and scheduler transitions must observe
            # fully up-to-date counters).
            if d_hits or i_hits or insns:
                hits = d_hits + i_hits
                hstats.accesses += hits
                hstats.l1_hits += hits
                l1d_stats.hits += d_hits
                l1i_stats.hits += i_hits
                core.instructions_retired += insns
                stats.instructions += insns
                branch_ctx.counter += branches
                d_hits = i_hits = insns = branches = 0
            if code == OP_TXN_BEGIN:
                i += 1
            elif code == OP_TXN_END:
                i += 1
                machine.completed_transactions += 1
                workload_clock.total_transactions += 1
                stats.transactions += 1
                if txn_log is not None:
                    txn_log.append((local, op[1]))
                if probe_txn is not None:
                    probe_txn(local, thread.tid, op[1])
                if machine.completed_transactions >= total:
                    thread.op_index = i
                    stats.cpu_time_ns += local - start
                    # Leave the thread RUNNING; finalization re-arms
                    # the CPU (mirrors _op_txn_end).
                    target_time = local
                    break
            elif code == OP_LOCK:
                mutex = locks.mutex(op[1])
                access(cpu, mutex.address, True, local)
                local += 1
                if mutex.try_acquire(thread.tid):
                    thread.blocked_on_lock = None
                    i += 1
                else:
                    # Spin-then-block; op NOT consumed (the woken
                    # thread re-runs the acquire and may find the lock
                    # barged).
                    local += spin_ns
                    mutex.enqueue_waiter(thread.tid)
                    thread.blocked_on_lock = mutex.lock_id
                    stats.lock_blocks += 1
                    thread.op_index = i
                    stats.cpu_time_ns += local - start
                    if probe_lock is not None:
                        probe_lock("block", local, thread.tid, mutex.lock_id)
                    scheduler.block(cpu, thread, ThreadState.BLOCKED_LOCK)
                    break
            elif code == OP_UNLOCK:
                mutex = locks.mutex(op[1])
                access(cpu, mutex.address, True, local)
                local += 1
                next_tid = mutex.release(thread.tid)
                i += 1
                if next_tid is not None:
                    if probe_lock is not None:
                        probe_lock("handoff", local, next_tid, mutex.lock_id)
                    heapq.heappush(
                        wakeups, (local + wakeup_latency, seq, next_tid)
                    )
                    seq += 1
            elif code == OP_IO:
                i += 1
                thread.op_index = i
                stats.cpu_time_ns += local - start
                scheduler.block(cpu, thread, ThreadState.BLOCKED_IO)
                heapq.heappush(wakeups, (local + op[1], seq, thread.tid))
                seq += 1
                break
            elif code == OP_BARRIER:
                barrier = locks.barrier(op[1], op[2])
                i += 1
                released = barrier.arrive(thread.tid)
                if released is None:
                    thread.op_index = i
                    stats.cpu_time_ns += local - start
                    scheduler.block(cpu, thread, ThreadState.BLOCKED_BARRIER)
                    break
                wake = local + wakeup_latency
                for other in released:
                    if other != thread.tid:
                        heapq.heappush(wakeups, (wake, seq, other))
                        seq += 1
            elif code == OP_YIELD:
                i += 1
                thread.op_index = i
                stats.cpu_time_ns += local - start
                scheduler.preempt(cpu, thread)
                break
            else:
                raise ValueError(f"unknown opcode {op_name(code)}")
        if local >= slice_end:
            # Slice expired; the thread stays RUNNING and continues
            # next round.
            if d_hits or i_hits or insns:
                hits = d_hits + i_hits
                hstats.accesses += hits
                hstats.l1_hits += hits
                l1d_stats.hits += d_hits
                l1i_stats.hits += i_hits
                core.instructions_retired += insns
                stats.instructions += insns
                branch_ctx.counter += branches
            thread.op_index = i
            stats.cpu_time_ns += local - start
            break
    return seq, target_time
