"""Section 3.3: sensitivity of variability to the perturbation magnitude.

The paper checked that shrinking the uniform perturbation from 0-4 ns to
0-1 ns did not significantly change the coefficient of variation -- the
injected jitter only *seeds* divergence; the magnitude of the resulting
variability comes from the workload's own amplification.  We sweep the
magnitude (including zero, which must collapse the space entirely).
"""

from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core.metrics import summarize

from benchmarks import common

MAGNITUDES = (0, 1, 2, 4, 8, 16)


def run_experiment() -> dict[int, object]:
    checkpoint = common.warm_checkpoint("oltp")
    results = {}
    for magnitude in MAGNITUDES:
        config = SystemConfig().with_perturbation(magnitude)
        sample = common.sample_runs(config, checkpoint, seed_base=100)
        results[magnitude] = summarize(sample.values)
    return results


def report(results: dict) -> str:
    rows = [
        [
            f"0-{magnitude} ns" if magnitude else "disabled",
            f"{s.mean:,.0f}",
            f"{s.coefficient_of_variation:.2f}%",
            f"{s.range_of_variability:.2f}%",
        ]
        for magnitude, s in results.items()
    ]
    return format_table(
        ["perturbation", "mean cycles/txn", "CoV", "range"],
        rows,
        title="Perturbation-magnitude sensitivity (paper 3.3)",
    ) + (
        "\npaper: CoV not significantly affected by the magnitude;"
        " zero perturbation makes the simulator fully deterministic"
    )


def test_perturbation_sensitivity(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    common.print_header("Perturbation-magnitude sensitivity")
    print(report(results))
    # Zero perturbation: deterministic, zero variability (identical runs;
    # tolerance covers float summation epsilon only).
    assert results[0].coefficient_of_variation < 1e-9
    # Any nonzero magnitude: variability in the same band (within 3x
    # between 1 ns and 16 ns -- magnitude-insensitive amplification).
    covs = [results[m].coefficient_of_variation for m in (1, 2, 4, 8, 16)]
    assert all(c > 0 for c in covs)
    assert max(covs) < 3 * min(covs)
    # The mean barely moves (mean jitter is tiny vs transaction time).
    means = [results[m].mean for m in MAGNITUDES]
    assert max(means) < 1.1 * min(means)


if __name__ == "__main__":
    print(report(run_experiment()))
