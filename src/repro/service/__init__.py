"""The distributed campaign service.

The paper's prescription -- many runs per (configuration × workload)
cell, with confidence intervals -- makes every serious study an
embarrassingly parallel grid of thousands of independent runs.  This
package shards those grids across processes and hosts:

- :mod:`repro.service.protocol` -- the wire form of a
  :class:`~repro.campaign.plan.CampaignSpec` and the decomposition of a
  spec into (config × workload × seed) *cells*, each resolved to its
  content-addressed run key;
- :mod:`repro.service.queue` -- a lease-based work queue (SQLite,
  compare-and-set claims): cells are leased to workers with
  heartbeat-renewed expiry, requeued when a lease lapses (worker
  crash), and quarantined after too many failed attempts;
- :mod:`repro.service.worker` -- the worker daemon
  (``python -m repro campaign worker``): pull a lease, execute the cell
  through the same warm-state/fast-forward path in-process campaigns
  use, heartbeat while running, publish the result through the store;
- :mod:`repro.service.server` -- the HTTP front door
  (``python -m repro campaign serve``, stdlib ``ThreadingHTTPServer``):
  accepts study submissions as JSON, deduplicates submitted cells
  against everything already in the store, and streams per-cell
  progress as JSON lines to ``campaign watch``;
- :mod:`repro.service.client` -- stdlib HTTP helpers the CLI's
  ``submit``/``watch``/``status`` subcommands are built on.

Correctness contract: a campaign executed via server + workers yields
per-run payloads byte-identical to the same spec run through the
in-process :class:`~repro.campaign.campaign.Campaign` -- the service
changes *where* cells run, never *what* a run means.  That holds because
workers execute through the very same job constructor
(:func:`repro.core.request.execute_request`) and warm-checkpoint cache
(:func:`repro.system.checkpoint.warm_checkpoint`) as the in-process
path, and results are keyed by the same content addresses.
"""

from repro.service.protocol import (
    PROTOCOL_VERSION,
    Cell,
    ServiceError,
    enumerate_cells,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.queue import (
    DEFAULT_LEASE_S,
    DEFAULT_MAX_ATTEMPTS,
    LeasedCell,
    WorkQueue,
    default_queue_path,
)
from repro.service.worker import Worker

__all__ = [
    "PROTOCOL_VERSION",
    "Cell",
    "ServiceError",
    "enumerate_cells",
    "spec_from_dict",
    "spec_to_dict",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "LeasedCell",
    "WorkQueue",
    "default_queue_path",
    "Worker",
]
