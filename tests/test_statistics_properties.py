"""Property-style tests for the statistics core.

``test_statistics.py`` pins the paper's worked examples; this module
checks the *laws* the functions must obey on arbitrary inputs --
closed-form agreement with scipy, monotonicity of interval widths in
confidence and sample size, antisymmetry of the two-sample test under
sample swap, and the [0, 1] range of the wrong-conclusion bound.  The
methodology chapters of the paper lean on exactly these properties (a CI
that failed to widen with confidence, say, would silently invalidate
every Figure 10-style conclusion).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.core.confidence import (
    NORMAL_APPROXIMATION_N,
    confidence_interval,
    critical_t,
    estimate_sample_size,
    intervals_overlap,
)
from repro.core.hypothesis import two_sample_t_test

#: samples of well-behaved floats (no NaN/inf, bounded magnitude so
#: variance arithmetic stays in float range)
_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=40,
)

#: samples guaranteed to carry spread (distinct elements), so standard
#: errors are nonzero and test statistics are defined
_spread_values = _values.filter(lambda vs: max(vs) - min(vs) > 1e-6)

_confidences = st.floats(min_value=0.5, max_value=0.999)


class TestCriticalT:
    @given(confidence=_confidences, n=st.integers(min_value=2, max_value=200))
    def test_matches_scipy_closed_form(self, confidence, n):
        upper = 1 - (1 - confidence) / 2
        if n < NORMAL_APPROXIMATION_N:
            expected = scipy_stats.t.ppf(upper, df=n - 1)
        else:
            expected = scipy_stats.norm.ppf(upper)
        assert critical_t(confidence, n) == pytest.approx(float(expected))

    @given(confidence=_confidences, n=st.integers(min_value=2, max_value=200))
    def test_positive(self, confidence, n):
        assert critical_t(confidence, n) > 0

    @given(n=st.integers(min_value=2, max_value=200))
    def test_monotone_in_confidence(self, n):
        deviates = [critical_t(c, n) for c in (0.80, 0.90, 0.95, 0.99)]
        assert deviates == sorted(deviates)
        assert deviates[0] < deviates[-1]

    @given(confidence=_confidences)
    def test_t_dominates_normal_deviate(self, confidence):
        """Student t has heavier tails than the normal at every df, so the
        small-sample deviate always exceeds the large-sample one."""
        normal = critical_t(confidence, NORMAL_APPROXIMATION_N)
        for n in (2, 5, 10, 30, NORMAL_APPROXIMATION_N - 1):
            assert critical_t(confidence, n) > normal


class TestConfidenceIntervalProperties:
    @given(values=_values)
    def test_interval_brackets_mean_symmetrically(self, values):
        ci = confidence_interval(values, 0.95)
        assert ci.lower <= ci.mean <= ci.upper
        assert (ci.mean - ci.lower) == pytest.approx(
            ci.upper - ci.mean, rel=1e-9, abs=1e-9
        )
        assert ci.contains(ci.mean)

    @given(values=_spread_values)
    def test_widens_monotonically_with_confidence(self, values):
        widths = [
            confidence_interval(values, c).half_width
            for c in (0.80, 0.90, 0.95, 0.99)
        ]
        assert widths == sorted(widths)
        assert widths[0] < widths[-1]

    @given(values=_spread_values, k=st.integers(min_value=2, max_value=6))
    def test_shrinks_with_replicated_sample(self, values, k):
        """Replicating a sample k-fold keeps the stddev (asymptotically)
        but divides the standard error by ~sqrt(k): the interval must
        shrink.  This is Figure 10's more-runs-tighter-interval law."""
        small = confidence_interval(values, 0.95)
        large = confidence_interval(list(values) * k, 0.95)
        assert large.half_width < small.half_width

    @given(values=_spread_values, shift=st.floats(min_value=-1e5, max_value=1e5,
                                                  allow_nan=False))
    def test_translation_equivariance(self, values, shift):
        base = confidence_interval(values, 0.95)
        moved = confidence_interval([v + shift for v in values], 0.95)
        assert moved.half_width == pytest.approx(
            base.half_width, rel=1e-6, abs=1e-6
        )

    @given(values=_values)
    def test_interval_overlaps_itself(self, values):
        ci = confidence_interval(values, 0.95)
        assert intervals_overlap(ci, ci)

    @given(values=_spread_values)
    def test_disjoint_translates_do_not_overlap(self, values):
        ci = confidence_interval(values, 0.95)
        far = confidence_interval(
            [v + 10 * (ci.half_width + 1.0) + (max(values) - min(values))
             for v in values],
            0.95,
        )
        assert not intervals_overlap(ci, far)


class TestTTestProperties:
    @given(a=_spread_values, b=_spread_values)
    def test_antisymmetric_under_sample_swap(self, a, b):
        """Swapping the samples negates the statistic, and the one-sided
        p-values are complementary: p(a,b) + p(b,a) == 1."""
        forward = two_sample_t_test(a, b)
        backward = two_sample_t_test(b, a)
        assert forward.statistic == pytest.approx(
            -backward.statistic, rel=1e-9, abs=1e-9
        )
        assert forward.degrees_of_freedom == backward.degrees_of_freedom
        assert forward.p_value + backward.p_value == pytest.approx(1.0, abs=1e-9)

    @given(a=_spread_values, b=_spread_values)
    def test_wrong_conclusion_bound_in_unit_interval(self, a, b):
        result = two_sample_t_test(a, b)
        assert 0.0 <= result.wrong_conclusion_bound <= 1.0
        assert result.wrong_conclusion_bound == result.p_value

    @given(values=_spread_values)
    def test_identical_samples_never_reject(self, values):
        """A sample against itself has statistic 0 and p = 0.5: no
        significance level below 0.5 can reject."""
        result = two_sample_t_test(values, values)
        assert result.statistic == pytest.approx(0.0, abs=1e-12)
        assert result.p_value == pytest.approx(0.5, abs=1e-9)
        for alpha in (0.10, 0.05, 0.01):
            assert not result.rejects_at(alpha)

    @given(a=_spread_values, b=_spread_values)
    def test_welch_agrees_on_statistic_and_bounds_df(self, a, b):
        pooled = two_sample_t_test(a, b)
        welch = two_sample_t_test(a, b, welch=True)
        assert welch.statistic == pytest.approx(pooled.statistic, rel=1e-12)
        # Welch-Satterthwaite df never exceeds the equal-variance 2n-2 form
        # and is at least min(n_a, n_b) - 1.
        assert welch.degrees_of_freedom <= pooled.degrees_of_freedom + 1e-9
        assert welch.degrees_of_freedom >= min(len(a), len(b)) - 1 - 1e-9

    @given(a=_spread_values)
    def test_separated_samples_reject(self, a):
        """Shifting a copy of the sample far above the original must be
        detected: the one-sided test of 'A larger' rejects at 5%."""
        spread = max(a) - min(a)
        shifted = [v + 100 * (spread + 1.0) for v in a]
        result = two_sample_t_test(shifted, a)
        assert result.statistic > 0
        assert result.rejects_at(0.05)


class TestSampleSizeProperties:
    @given(
        cov=st.floats(min_value=1e-3, max_value=2.0, allow_nan=False),
        error=st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
        confidence=_confidences,
    )
    def test_matches_cochran_closed_form(self, cov, error, confidence):
        deviate = scipy_stats.norm.ppf(1 - (1 - confidence) / 2)
        expected = math.ceil((deviate * cov / error) ** 2)
        assert estimate_sample_size(cov, error, confidence) == expected

    @given(
        cov=st.floats(min_value=1e-3, max_value=2.0, allow_nan=False),
        error=st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
    )
    def test_at_least_one_run(self, cov, error):
        assert estimate_sample_size(cov, error) >= 1

    @given(cov=st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    def test_monotone_in_target_error(self, cov):
        """Halving the tolerated error must cost at least as many runs
        (quadratically more, in fact)."""
        sizes = [estimate_sample_size(cov, r) for r in (0.16, 0.08, 0.04, 0.02)]
        assert sizes == sorted(sizes)
        assert sizes[-1] >= 4 * sizes[0] - 4  # ~quadratic growth in 1/r

    @given(error=st.floats(min_value=0.01, max_value=0.5, allow_nan=False))
    def test_monotone_in_variability(self, error):
        """Noisier workloads need more runs (the paper's Table 3 spread)."""
        sizes = [estimate_sample_size(c, error) for c in (0.02, 0.05, 0.1, 0.2)]
        assert sizes == sorted(sizes)

    def test_paper_worked_example(self):
        # r=4%, 95% confidence, CoV=9% => ~20 runs (paper 5.1.1).
        assert estimate_sample_size(0.09, 0.04, 0.95) == pytest.approx(20, abs=1)
