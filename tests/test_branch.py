"""Tests for the branch prediction structures."""

import pytest

from repro.proc.branch import (
    CascadedIndirectPredictor,
    ReturnAddressStack,
    YagsPredictor,
    _CounterTable,
)


class TestCounterTable:
    def test_initial_weakly_taken(self):
        table = _CounterTable(16)
        assert table.read(0) == 2

    def test_saturation(self):
        table = _CounterTable(16)
        for _ in range(10):
            table.update(0, True)
        assert table.read(0) == 3
        for _ in range(10):
            table.update(0, False)
        assert table.read(0) == 0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            _CounterTable(12)

    def test_index_folds(self):
        table = _CounterTable(16)
        assert table.index(16) == 0
        assert table.index(17) == 1


class TestYags:
    def test_learns_always_taken_branch(self):
        yags = YagsPredictor()
        pc = 0x1000
        for _ in range(8):
            yags.update(pc, True)
        assert yags.predict(pc) is True

    def test_learns_never_taken_branch(self):
        yags = YagsPredictor()
        pc = 0x2000
        for _ in range(8):
            yags.update(pc, False)
        assert yags.predict(pc) is False

    def test_low_steady_state_misprediction_on_static_branches(self):
        yags = YagsPredictor()
        branches = {0x1000 + i * 16: (i % 3 != 0) for i in range(64)}
        # Warm up.
        for _ in range(20):
            for pc, taken in branches.items():
                yags.update(pc, taken)
        yags.predictions = 0
        yags.mispredictions = 0
        for _ in range(20):
            for pc, taken in branches.items():
                yags.update(pc, taken)
        assert yags.misprediction_rate < 0.05

    def test_exception_cache_handles_bias_contradiction(self):
        yags = YagsPredictor()
        pc = 0x3000
        # Strongly bias taken, then flip: the not-taken cache must learn.
        for _ in range(10):
            yags.update(pc, True)
        for _ in range(4):
            yags.update(pc, False)
        assert yags.predict(pc) is False

    def test_mispredictions_counted(self):
        yags = YagsPredictor()
        yags.update(0x100, False)  # initial weakly-taken predicts taken
        assert yags.predictions == 1
        assert yags.mispredictions == 1

    def test_rate_zero_when_unused(self):
        assert YagsPredictor().misprediction_rate == 0.0


class TestIndirect:
    def test_learns_stable_target(self):
        pred = CascadedIndirectPredictor()
        pc, target = 0x4000, 0x9000
        pred.update(pc, target)
        assert pred.predict(pc) == target

    def test_first_update_mispredicts(self):
        pred = CascadedIndirectPredictor()
        assert pred.update(0x4000, 0x9000) is True

    def test_monomorphic_steady_state(self):
        pred = CascadedIndirectPredictor()
        pred.update(0x4000, 0x9000)
        for _ in range(10):
            assert pred.update(0x4000, 0x9000) is False

    def test_second_stage_engages_for_changing_targets(self):
        pred = CascadedIndirectPredictor()
        pc = 0x4000
        pred.update(pc, 0x9000)
        pred.update(pc, 0xA000)  # first stage failed; promoted
        assert len(pred._second) >= 1

    def test_entries_validated(self):
        with pytest.raises(ValueError):
            CascadedIndirectPredictor(entries=0)


class TestRas:
    def test_call_return_pairing(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        assert ras.predict_return(0x100) is False

    def test_nested_calls(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.push(0x200)
        assert ras.predict_return(0x200) is False
        assert ras.predict_return(0x100) is False

    def test_underflow_mispredicts(self):
        ras = ReturnAddressStack()
        assert ras.predict_return(0x100) is True

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(entries=2)
        ras.push(0x100)
        ras.push(0x200)
        ras.push(0x300)  # 0x100 lost
        assert ras.predict_return(0x300) is False
        assert ras.predict_return(0x200) is False
        assert ras.predict_return(0x100) is True  # bottom was overwritten... gone

    def test_depth(self):
        ras = ReturnAddressStack()
        ras.push(1)
        ras.push(2)
        assert ras.depth == 2

    def test_entries_validated(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(entries=0)
