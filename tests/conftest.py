"""Shared fixtures.

Machine-level tests use a deliberately small target (4 CPUs, few threads,
short runs) so the whole suite stays fast; the benchmark harness is where
paper-sized experiments live.
"""

from __future__ import annotations

import pytest

from repro.config import RunConfig, SystemConfig
from repro.system.checkpoint import Checkpoint
from repro.system.machine import Machine
from repro.workloads.registry import make_workload


@pytest.fixture
def small_config() -> SystemConfig:
    """A 4-CPU system with the default scaled cache hierarchy."""
    return SystemConfig(n_cpus=4)


@pytest.fixture
def small_oltp():
    """An OLTP workload slimmed to 2 threads per CPU."""
    return make_workload("oltp", threads_per_cpu=2)


def make_small_oltp():
    """Non-fixture variant for session-scoped fixtures."""
    return make_workload("oltp", threads_per_cpu=2)


@pytest.fixture
def short_run() -> RunConfig:
    """A 30-transaction measurement with no warmup."""
    return RunConfig(measured_transactions=30, warmup_transactions=0, seed=5)


@pytest.fixture(scope="session")
def warm_checkpoint() -> Checkpoint:
    """A 4-CPU OLTP machine warmed for 300 transactions, checkpointed.

    Session-scoped: warming costs ~a second and many tests start from
    identical initial conditions, exactly as the paper's methodology does.
    """
    config = SystemConfig(n_cpus=4)
    machine = Machine(config, make_small_oltp())
    machine.hierarchy.seed_perturbation(9)
    machine.run_until_transactions(300, max_time_ns=10**12)
    return Checkpoint.capture(machine)
