"""The campaign worker daemon (``python -m repro campaign worker``).

A worker owns no campaign state: it pulls one lease at a time from the
shared :class:`~repro.service.queue.WorkQueue`, executes the cell, and
publishes the result through the shared :class:`~repro.store.RunStore`.
Everything that matters for correctness is therefore in infrastructure
the in-process path already trusts:

- the cell executes through the very same request template
  (:func:`repro.campaign.plan.cell_request` ->
  :func:`repro.core.request.execute_request`) the fan-out engine and
  ``run_space`` use, so its result is bit-identical to an in-process
  campaign's;
- a warm-started cell resolves its shared warm checkpoint through
  :func:`repro.system.checkpoint.warm_checkpoint` with the store --
  cause-keyed, so N workers build it at most N times and usually zero
  (first one wins, the rest read the cache);
- the result is stored *before* the queue is told: a crash between the
  two leaves a cached result that the requeued cell's next worker
  serves without re-executing.

While a cell runs, a daemon thread heartbeats the lease.  A worker that
dies stops heartbeating and the queue requeues the cell -- crash
recovery needs no cooperation from the crashed process.  If a heartbeat
reports the lease lost (e.g. a long GC pause let it lapse), the worker
still finishes and stores the run -- content-addressed writes are
idempotent -- but leaves the queue transition to the new owner.
"""

from __future__ import annotations

import os
import threading
import time
import uuid

from repro.campaign.plan import cell_request
from repro.core.request import effective_config, execute_request, format_failure
from repro.service.protocol import spec_from_dict
from repro.service.queue import DEFAULT_LEASE_S, LeasedCell, WorkQueue
from repro.store import RunStore

#: test-only hook: seconds to sleep after claiming a lease, before
#: executing (gives crash-recovery tests a deterministic kill window)
TEST_SLEEP_ENV = "REPRO_SERVICE_TEST_SLEEP"


class _Heartbeat(threading.Thread):
    """Renews one lease until stopped; flags a lost lease."""

    def __init__(self, queue: WorkQueue, cell: LeasedCell, worker_id: str,
                 lease_s: float) -> None:
        super().__init__(daemon=True)
        self.queue = queue
        self.cell = cell
        self.worker_id = worker_id
        self.lease_s = lease_s
        self.lost = False
        # NB: not "_stop" -- Thread.join() calls a private _stop() method
        self._halt = threading.Event()

    def run(self) -> None:
        interval = max(self.lease_s / 3.0, 0.05)
        while not self._halt.wait(interval):
            if not self.queue.heartbeat(
                self.cell.cell_id, self.worker_id, lease_s=self.lease_s
            ):
                self.lost = True
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


class Worker:
    """Pull leases, execute cells, publish results.

    ``drain=True`` exits once no cell anywhere is pending or leased
    (instead of idling for new submissions); ``max_cells`` bounds how
    many cells this worker will run (tests and canaries).  The worker
    never parses campaign specs twice: decoded specs are cached per
    campaign id.
    """

    def __init__(
        self,
        queue: WorkQueue,
        store: RunStore,
        *,
        worker_id: str | None = None,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = 0.5,
        drain: bool = False,
        max_cells: int | None = None,
        progress=None,
    ) -> None:
        self.queue = queue
        self.store = store
        self.worker_id = worker_id or f"{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.drain = drain
        self.max_cells = max_cells
        self.progress = progress
        self.completed = 0
        self.served_cached = 0
        self.failed = 0
        self._specs: dict = {}  # campaign id -> CampaignSpec

    def _say(self, text: str) -> None:
        if self.progress is not None:
            self.progress(f"[worker {self.worker_id}] {text}")

    def _spec_for(self, campaign_id: str):
        spec = self._specs.get(campaign_id)
        if spec is None:
            row = self.queue.campaign(campaign_id)
            if row is None:
                raise RuntimeError(f"campaign {campaign_id} vanished from the queue")
            spec = spec_from_dict(row["spec"])
            self._specs[campaign_id] = spec
        return spec

    # ------------------------------------------------------------------
    def run_forever(self) -> int:
        """The daemon loop; returns the number of cells completed."""
        while True:
            if self.max_cells is not None and self.completed >= self.max_cells:
                self._say(f"max-cells reached ({self.max_cells}); exiting")
                return self.completed
            # Cheap read-only probe first: only take the queue's write
            # lock when a claim can plausibly succeed.
            cell = (
                self.queue.claim(self.worker_id, lease_s=self.lease_s)
                if self.queue.has_claimable()
                else None
            )
            if cell is None:
                if self.drain and self.queue.outstanding() == 0:
                    self._say("queue drained; exiting")
                    return self.completed
                time.sleep(self.poll_s)
                continue
            self.run_one(cell)

    def run_one(self, cell: LeasedCell) -> bool:
        """Execute one leased cell end to end; ``True`` on completion."""
        test_sleep = float(os.environ.get(TEST_SLEEP_ENV, "0") or "0")
        if test_sleep > 0:
            # Crash-recovery tests SIGKILL the worker inside this window;
            # no heartbeat runs yet, so the lease lapses on schedule.
            time.sleep(test_sleep)

        # Dedup at claim time: another campaign (or a crashed twin that
        # stored before dying) may have produced this key already.
        if self.store.contains(cell.run_key):
            self.queue.complete(cell.cell_id, self.worker_id, cached=True)
            self.completed += 1
            self.served_cached += 1
            self._say(f"cell {cell.cell_id} served from store ({cell.run_key[:12]})")
            return True

        heartbeat = _Heartbeat(self.queue, cell, self.worker_id, self.lease_s)
        heartbeat.start()
        try:
            result, spec, label, wspec = self._execute(cell)
        except Exception as exc:  # noqa: BLE001 -- a cell failure must not kill the daemon
            heartbeat.stop()
            self.failed += 1
            message = format_failure(exc)
            self.queue.fail(cell.cell_id, self.worker_id, message)
            self._say(f"cell {cell.cell_id} failed: {message}")
            return False
        heartbeat.stop()

        # Store first, then transition the queue: a crash in between
        # costs one redundant (and idempotent) store read, never a loss.
        self.store.put(
            cell.run_key,
            result,
            workload=wspec.name,
            config=label,
            campaign=spec.name,
        )
        if heartbeat.lost:
            # The queue re-leased this cell; its new owner will find the
            # stored result and complete as cached.  Don't double-report.
            self._say(f"cell {cell.cell_id} finished after lease loss (stored)")
            return True
        self.queue.complete(cell.cell_id, self.worker_id)
        self.completed += 1
        self._say(
            f"cell {cell.cell_id} done ({cell.config_label} x {cell.workload} "
            f"seed {cell.seed})"
        )
        return True

    def _execute(self, cell: LeasedCell):
        """Run the cell's simulation exactly as the in-process path would."""
        spec = self._spec_for(cell.campaign_id)
        try:
            label, config = spec.configs[cell.config_index]
            wspec = spec.workloads[cell.workload_index]
        except IndexError as exc:
            raise RuntimeError(
                f"cell {cell.cell_id} indexes outside its campaign spec"
            ) from exc
        template = cell_request(spec, config, wspec)
        checkpoint = None
        if spec.warm_start:
            from repro.system.checkpoint import warm_checkpoint

            # Warm-up under the fidelity-effective configuration, matching
            # the cell's warm key (cause-keyed: first worker builds it,
            # the rest read the cache).
            checkpoint = warm_checkpoint(
                effective_config(config, spec.fidelity),
                wspec.make(),
                warmup_transactions=spec.run.warmup_transactions,
                max_time_ns=spec.run.max_time_ns,
                store=self.store,
                mode=spec.warmup_mode,
            )
        request = template.with_seed(cell.seed)
        return execute_request(request, checkpoint), spec, label, wspec
