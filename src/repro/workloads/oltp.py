"""OLTP: a TPC-C-like database workload (paper section 3.1).

The paper's OLTP is IBM DB2 running a TPC-C-like mix: five transaction
types against a warehouse database, many concurrent users with no think
time, a dedicated log, and 8 users per processor.  This generator
reproduces the *structural* properties that drive variability:

- **Five transaction types** with the TPC-C mix (New-Order 45 %,
  Payment 43 %, Order-Status 4 %, Delivery 4 %, Stock-Level 4 %), each
  with its own footprint and lock behaviour.
- **Lock hierarchy**: a small set of hot district locks serializes
  same-district transactions (which district a transaction hits is
  deterministic per transaction, but *who wins* a contended lock depends
  on timing -- the paper's lock-order divergence); a single log mutex
  serializes commit records.
- **Buffer-pool accesses** with a hot/cold distribution, plus
  stride-aligned index-root touches (the associativity-sensitive pattern
  for Experiment 1).
- **I/O**: cold buffer misses read from disk; commits append to the log,
  with periodic group-flushes -- both block the thread and hand the CPU
  to the scheduler.
- **Time variability**: the transaction mix drifts over the workload
  lifetime, the buffer-pool hot set breathes, and log-flush storms recur
  -- so runs started from different checkpoints see different behaviour
  (Figures 8 and 9).
"""

from __future__ import annotations

import math

from repro.isa import OP_CPU, OP_MEM, OP_LOCK, OP_UNLOCK, OP_IO, OP_TXN_BEGIN, OP_TXN_END
from repro.workloads import address_space as aspace
from repro.workloads.base import Op, Workload, WorkloadClock, WorkloadProgram

# Transaction type ids.
NEW_ORDER, PAYMENT, ORDER_STATUS, DELIVERY, STOCK_LEVEL = range(5)
TXN_NAMES = ("new_order", "payment", "order_status", "delivery", "stock_level")
BASE_MIX = (45, 43, 4, 4, 4)

# Lock ids (global lock-id space; each workload has a reserved range).
DISTRICT_LOCK_BASE = 0
LOG_LOCK = 99


class OLTPProgram(WorkloadProgram):
    """One database worker thread."""

    def __init__(self, workload: "OLTPWorkload", tid: int, clock: WorkloadClock) -> None:
        super().__init__(workload.name, tid, workload.seed, clock)
        self.w = workload
        self.mem_counter = 0
        self.log_counter = 0
        self.code_region = 0
        self._pool_bytes_now = workload.pool_bytes

    # ------------------------------------------------------------------
    # Lifetime phases (time variability)
    # ------------------------------------------------------------------
    def _phase(self) -> float:
        """Slow lifetime modulation in [-1, 1] from global progress."""
        t = self.clock.total_transactions
        return math.sin(2 * math.pi * t / self.w.phase_period_txns)

    def _mix_weights(self) -> list[int]:
        """The transaction mix, drifted by workload phase.

        Heavier New-Order phases alternate with Payment-heavy phases, the
        kind of mix drift the paper notes ("the exact mix of transactions
        may vary over time").
        """
        shift = int(self.w.mix_drift * self._phase())
        weights = list(BASE_MIX)
        weights[NEW_ORDER] = max(1, weights[NEW_ORDER] + shift)
        weights[PAYMENT] = max(1, weights[PAYMENT] - shift)
        return weights

    def _pool_bytes(self) -> int:
        """Buffer-pool footprint, breathing with the lifetime phase."""
        base = self.w.pool_bytes
        return int(base * (1.0 + self.w.pool_breathing * self._phase()))

    # ------------------------------------------------------------------
    # Transaction construction
    # ------------------------------------------------------------------
    def build_transaction(self) -> list[Op]:
        # The pool footprint depends only on global progress, which is
        # frozen while one transaction is being built: compute it once
        # per transaction instead of per address (it hides a sin()).
        self._pool_bytes_now = self._pool_bytes()
        txn_type = self.pick_weighted(self._mix_weights(), 1)
        self.code_region = txn_type
        builder = (
            self._new_order,
            self._payment,
            self._order_status,
            self._delivery,
            self._stock_level,
        )[txn_type]
        ops: list[Op] = [(OP_TXN_BEGIN, txn_type)]
        builder(ops)
        ops.append((OP_TXN_END, txn_type))
        return ops

    def _district(self, key: int) -> int:
        """The district lock this transaction contends on."""
        return DISTRICT_LOCK_BASE + self.draw1(key) % self.w.n_hot_districts

    # -- op-stream building blocks ------------------------------------
    def _cpu(self, ops: list[Op], n_instructions: int) -> None:
        self.mem_counter += 1
        code = aspace.code_address(
            self.w.seed,
            self.mem_counter,
            self.w.code_footprint_bytes,
            region=self.code_region,
        )
        ops.append((OP_CPU, n_instructions, code))

    def _index_lookup(self, ops: list[Op], depth: int) -> None:
        """Walk a B-tree: stride-aligned root, then hot/cold interior."""
        self.mem_counter += 1
        ops.append(
            (OP_MEM, aspace.strided_root_address(self.w.seed, self.draw1(3), self.w.n_index_roots), 0)
        )
        for _ in range(depth):
            self.mem_counter += 1
            ops.append((OP_MEM, self._pool_address(), 0))
        self._cpu(ops, self.w.scaled(30))

    def _pool_address(self) -> int:
        return aspace.zipf_address(
            self.w.seed,
            self.mem_counter + self.draw1(5) % 1024,
            self._pool_bytes_now,
        )

    def _row_access(
        self, ops: list[Op], n_rows: int, write: bool, *, may_fault: bool = True
    ) -> None:
        """Touch row data; cold rows fault in from disk.

        Each row is touched several times (field reads, then the update):
        the temporal locality that makes the first touch the only miss.
        ``may_fault=False`` marks rows pinned in the buffer pool (used
        inside critical sections, which never take disk faults).
        """
        for _ in range(n_rows):
            self.mem_counter += 1
            row = self._pool_address()
            # Even in update transactions most touched rows are only read
            # (predicate checks, joins); a fraction take the update.
            updated = write and self.draw_milli(9, self.mem_counter) < self.w.update_milli
            ops.append((OP_MEM, row, 0))
            ops.append((OP_MEM, row, 0))
            ops.append((OP_MEM, row, int(updated)))
            ops.append((OP_MEM, aspace.private_address(self.tid, self.mem_counter, self.w.private_bytes), 1))
            if may_fault and self.draw_milli(7, self.mem_counter) < self.w.disk_read_milli:
                ops.append((OP_IO, self.w.disk_read_ns))
        self._cpu(ops, self.w.scaled(40) * n_rows)

    def _commit(self, ops: list[Op], records: int) -> None:
        """Append commit records; group commit (DB2-style).

        Most committers append their records to the log buffer and let a
        *leader* flush on their behalf; only leaders serialize on the log
        mutex.  During a periodic flush storm every leader also waits on
        the log device (a recurring slow phase -> Figure 8).
        """
        leader = self.draw_milli(13) < self.w.group_commit_milli
        if leader:
            ops.append((OP_LOCK, LOG_LOCK))
        for _ in range(records):
            self.log_counter += 1
            ops.append((OP_MEM, aspace.log_address(self.seed % 4096 + self.log_counter), 1))
        self._cpu(ops, self.w.scaled(25))
        if leader:
            # The flush rate swells and ebbs over the workload lifetime
            # (checkpointing pressure): a smooth recurring slow phase
            # (Figure 8) that averages out over long windows.
            t = self.clock.total_transactions
            wave = 1.0 + math.sin(2 * math.pi * t / self.w.flush_period_txns)
            if self.draw_milli(11) < int(self.w.flush_milli * wave):
                ops.append((OP_IO, self.w.log_flush_ns))
            ops.append((OP_UNLOCK, LOG_LOCK))

    # -- the five TPC-C transaction types ------------------------------
    def _new_order(self, ops: list[Op]) -> None:
        district = self._district(21)
        n_items = 8 + self.draw1(22) % self.w.scaled(12)
        # Fetch phase: index walks and item/stock reads happen before the
        # district critical section (two-phase style), so disk faults are
        # never taken while holding the hot lock.
        self._index_lookup(ops, depth=5)
        for item in range(n_items):
            self._index_lookup(ops, depth=3)
            self._row_access(ops, n_rows=1, write=True)  # stock update
        # Short critical section: allocate the order id, bump D_NEXT_O_ID.
        ops.append((OP_LOCK, district))
        self._row_access(ops, n_rows=1, write=True, may_fault=False)
        self._cpu(ops, self.w.scaled(30))
        ops.append((OP_UNLOCK, district))
        self._commit(ops, records=2 + n_items // 4)

    def _payment(self, ops: list[Op]) -> None:
        district = self._district(23)
        self._index_lookup(ops, depth=5)
        self._index_lookup(ops, depth=4)
        self._row_access(ops, n_rows=5, write=True)  # warehouse/customer rows
        ops.append((OP_LOCK, district))
        self._row_access(ops, n_rows=1, write=True, may_fault=False)
        ops.append((OP_UNLOCK, district))
        self._commit(ops, records=1)

    def _order_status(self, ops: list[Op]) -> None:
        # Read-only: no district lock, no commit record.
        self._index_lookup(ops, depth=6)
        self._index_lookup(ops, depth=4)
        self._row_access(ops, n_rows=10, write=False)

    def _delivery(self, ops: list[Op]) -> None:
        # Batch: walks several districts' oldest orders.
        for batch in range(self.w.scaled(4)):
            district = DISTRICT_LOCK_BASE + (self.draw1(27) + batch) % self.w.n_hot_districts
            self._index_lookup(ops, depth=2)
            self._row_access(ops, n_rows=1, write=True)
            ops.append((OP_LOCK, district))
            self._row_access(ops, n_rows=1, write=True, may_fault=False)
            ops.append((OP_UNLOCK, district))
        self._commit(ops, records=3)

    def _stock_level(self, ops: list[Op]) -> None:
        # Heavy read-only scan over recent orders.
        self._index_lookup(ops, depth=5)
        self._row_access(ops, n_rows=self.w.scaled(26), write=False)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def extra_state(self) -> dict:
        return {"mem_counter": self.mem_counter, "log_counter": self.log_counter}

    def restore_extra(self, extra: dict) -> None:
        self.mem_counter = extra["mem_counter"]
        self.log_counter = extra["log_counter"]


class OLTPWorkload(Workload):
    """DB2-with-TPC-C-like workload factory (8 users per processor)."""

    name = "oltp"
    threads_per_cpu = 8
    code_footprint_bytes = 2 * 1024 * 1024  # DBMS text is large
    static_branches = 1024
    flip_noise_milli = 30

    # Data footprint (scaled-down 4000-warehouse database).  The Zipf
    # pool's head warms quickly; its tail, together with the DBMS text,
    # pressures the 4 MB L2 so capacity/conflict misses are real.
    pool_bytes = 2 * 1024 * 1024
    private_bytes = 16 * 1024
    n_index_roots = 16
    # Contention structure.
    n_hot_districts = 12
    update_milli = 400
    # I/O behaviour.
    disk_read_milli = 12
    disk_read_ns = 12_000
    flush_milli = 30
    log_flush_ns = 15_000
    group_commit_milli = 300
    # Lifetime phases.
    phase_period_txns = 4000
    flush_period_txns = 500
    mix_drift = 12
    pool_breathing = 0.2

    def make_program(self, tid: int, clock: WorkloadClock) -> OLTPProgram:
        return OLTPProgram(self, tid, clock)
