"""Wrong Conclusion Ratio (paper section 4.1).

When comparing systems A and B with N runs each, the correct conclusion
is the relationship between the two sample means.  The WCR is the
percentage of the N^2 single-run comparison pairs whose relationship is
the *opposite* -- an estimate of the probability that a researcher using
single simulations draws the wrong conclusion.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.metrics import mean


def wrong_conclusion_ratio(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    *,
    lower_is_better: bool = True,
) -> float:
    """WCR (percent) between two samples of run metrics.

    The "correct" conclusion is taken from the sample means (e.g. A's
    mean cycles-per-transaction below B's means A is superior).  Every
    (a, b) pair that orders the other way counts as a wrong conclusion;
    exact ties count as half (either conclusion could be drawn).
    """
    if not sample_a or not sample_b:
        raise ValueError("both samples must be non-empty")
    mean_a = mean(sample_a)
    mean_b = mean(sample_b)
    if mean_a == mean_b:
        raise ValueError("samples have equal means; no correct conclusion exists")
    a_better = mean_a < mean_b if lower_is_better else mean_a > mean_b

    wrong = 0.0
    for a in sample_a:
        for b in sample_b:
            if a == b:
                wrong += 0.5
                continue
            pair_a_better = a < b if lower_is_better else a > b
            if pair_a_better != a_better:
                wrong += 1.0
    return 100.0 * wrong / (len(sample_a) * len(sample_b))
