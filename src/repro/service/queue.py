"""The lease-based work queue.

One SQLite database (``queue.sqlite``, by default beside the run store)
holds every submitted campaign, its cells, and an append-only event log.
Server and workers share it directly -- the queue *is* the coordination
point, so neither side depends on the other staying alive.

Cell lifecycle::

    submitted --> cached                        (store already had it)
              \\-> pending --> leased --> done   (normal completion)
                     ^           |
                     |           +--> pending   (lease expired / run failed,
                     |                 attempts < max)
                     |           +--> quarantined (attempts exhausted)
                     +-----------+

Lease discipline: a worker *claims* a cell inside a ``BEGIN IMMEDIATE``
transaction -- take the write lock, requeue any lapsed leases, pick the
oldest pending cell, stamp it with the worker id and an expiry --
a compare-and-set in which the database write lock is the "compare", so
two workers can never lease the same cell (exclusivity is a transaction
property, not a convention).  While executing, the worker *heartbeats*
to push the expiry forward; a worker that dies (crash, SIGKILL, network
partition) simply stops heartbeating, the lease lapses, and the next
claim requeues the cell.  A cell that keeps failing -- every lapse and
failure increments ``attempts`` -- is quarantined after
``max_attempts`` so one poisoned cell cannot livelock the fleet.

Every transition appends an event row; ``campaign watch`` streams these
as JSON lines.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

#: default lease duration (a worker heartbeats at a fraction of this)
DEFAULT_LEASE_S = 30.0

#: default attempts before a cell is quarantined as poisoned
DEFAULT_MAX_ATTEMPTS = 3

#: queue database filename, beside the run store by default
QUEUE_FILENAME = "queue.sqlite"

_BUSY_TIMEOUT_S = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id           TEXT PRIMARY KEY,
    name         TEXT NOT NULL,
    spec         TEXT NOT NULL,
    max_attempts INTEGER NOT NULL,
    submitted_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id    TEXT NOT NULL,
    config_index   INTEGER NOT NULL,
    workload_index INTEGER NOT NULL,
    config_label   TEXT NOT NULL,
    workload       TEXT NOT NULL,
    seed           INTEGER NOT NULL,
    run_key        TEXT NOT NULL,
    state          TEXT NOT NULL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    worker         TEXT,
    lease_expiry   REAL,
    error          TEXT,
    finished_at    REAL,
    UNIQUE (campaign_id, run_key)
);
CREATE INDEX IF NOT EXISTS cells_by_state ON cells (state, id);
CREATE TABLE IF NOT EXISTS events (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id TEXT NOT NULL,
    at          REAL NOT NULL,
    kind        TEXT NOT NULL,
    detail      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS events_by_campaign ON events (campaign_id, seq);
"""

#: states a cell can rest in ("leased" is the only one with an owner)
CELL_STATES = ("pending", "leased", "done", "failed", "quarantined", "cached")

#: states that need no further work
TERMINAL_STATES = ("done", "quarantined", "cached")


def default_queue_path(store_root: str | Path) -> Path:
    """The queue database that belongs to a store root."""
    return Path(store_root) / QUEUE_FILENAME


@dataclass(frozen=True)
class LeasedCell:
    """What a successful claim hands the worker."""

    cell_id: int
    campaign_id: str
    config_index: int
    workload_index: int
    config_label: str
    workload: str
    seed: int
    run_key: str
    attempts: int
    lease_expiry: float


class WorkQueue:
    """Multi-process work queue over one SQLite database.

    Instances are cheap (a path and a schema check); every operation
    opens its own connection, so one ``WorkQueue`` may be shared across
    threads and survives ``fork()``.  All read-modify-write operations
    run under ``BEGIN IMMEDIATE`` and retry on lock contention, so
    concurrent servers and workers serialize rather than corrupt.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.closing(self._connect()) as conn:
            conn.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(
            self.path, timeout=_BUSY_TIMEOUT_S, isolation_level=None
        )

    def _write(self, fn):
        """Run ``fn(conn)`` inside ``BEGIN IMMEDIATE``, retrying on busy."""
        delay = 0.01
        for attempt in range(12):
            conn = self._connect()
            try:
                conn.execute("BEGIN IMMEDIATE")
                out = fn(conn)
                conn.execute("COMMIT")
                return out
            except sqlite3.OperationalError:
                with contextlib.suppress(sqlite3.Error):
                    conn.execute("ROLLBACK")
                if attempt == 11:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.5)
            finally:
                conn.close()
        raise AssertionError("unreachable")

    @staticmethod
    def _event(conn, campaign_id: str, kind: str, detail: dict, at: float) -> None:
        conn.execute(
            "INSERT INTO events (campaign_id, at, kind, detail) VALUES (?, ?, ?, ?)",
            (campaign_id, at, kind, json.dumps(detail, sort_keys=True)),
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        spec_dict: dict,
        cells,
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: float | None = None,
    ) -> str:
        """Enqueue a decomposed campaign; returns its id.

        ``cells`` is the :func:`repro.service.protocol.enumerate_cells`
        output: cells flagged ``cached`` are recorded as already
        satisfied (the submit-side dedup) and never leased; the rest
        start ``pending``.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        campaign_id = uuid.uuid4().hex[:12]
        at = time.time() if now is None else now
        spec_text = json.dumps(spec_dict, sort_keys=True)
        cells = list(cells)

        def body(conn):
            conn.execute(
                "INSERT INTO campaigns (id, name, spec, max_attempts, submitted_at)"
                " VALUES (?, ?, ?, ?, ?)",
                (campaign_id, name, spec_text, max_attempts, at),
            )
            for cell in cells:
                state = "cached" if cell.cached else "pending"
                conn.execute(
                    "INSERT INTO cells (campaign_id, config_index, workload_index,"
                    " config_label, workload, seed, run_key, state, finished_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        cell.config_index,
                        cell.workload_index,
                        cell.config_label,
                        cell.workload,
                        cell.seed,
                        cell.run_key,
                        state,
                        at if cell.cached else None,
                    ),
                )
            n_cached = sum(1 for c in cells if c.cached)
            self._event(
                conn,
                campaign_id,
                "submitted",
                {
                    "name": name,
                    "cells": len(cells),
                    "cached": n_cached,
                    "pending": len(cells) - n_cached,
                },
                at,
            )
            return campaign_id

        return self._write(body)

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def _requeue_lapsed(self, conn, now: float) -> None:
        """Requeue (or quarantine) every cell whose lease has lapsed.

        Runs inside the caller's write transaction.  ``attempts`` was
        charged at claim time, so a lapse only moves state: back to
        ``pending`` while attempts remain, to ``quarantined`` once the
        campaign's budget is spent.
        """
        rows = conn.execute(
            "SELECT c.id, c.campaign_id, c.run_key, c.worker, c.attempts,"
            "       m.max_attempts"
            " FROM cells c JOIN campaigns m ON m.id = c.campaign_id"
            " WHERE c.state = 'leased' AND c.lease_expiry < ?",
            (now,),
        ).fetchall()
        for cell_id, campaign_id, run_key, worker, attempts, max_attempts in rows:
            poisoned = attempts >= max_attempts
            state = "quarantined" if poisoned else "pending"
            conn.execute(
                "UPDATE cells SET state = ?, worker = NULL, lease_expiry = NULL,"
                " finished_at = ? WHERE id = ?",
                (state, now if poisoned else None, cell_id),
            )
            self._event(
                conn,
                campaign_id,
                "lease-expired",
                {
                    "cell": cell_id,
                    "run_key": run_key,
                    "worker": worker,
                    "attempts": attempts,
                    "requeued": not poisoned,
                },
                now,
            )
            if poisoned:
                self._event(
                    conn,
                    campaign_id,
                    "quarantined",
                    {"cell": cell_id, "run_key": run_key, "attempts": attempts},
                    now,
                )

    def claim(
        self,
        worker_id: str,
        *,
        lease_s: float = DEFAULT_LEASE_S,
        now: float | None = None,
    ) -> LeasedCell | None:
        """Lease the oldest pending cell to ``worker_id``, or ``None``.

        Atomic with lapsed-lease requeue: a claim first recovers any
        cells whose workers died, so a single surviving worker drains a
        crashed fleet's backlog with no separate reaper process.
        """
        now = time.time() if now is None else now

        def body(conn):
            self._requeue_lapsed(conn, now)
            row = conn.execute(
                "SELECT id, campaign_id, config_index, workload_index,"
                " config_label, workload, seed, run_key, attempts"
                " FROM cells WHERE state = 'pending' ORDER BY id LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            (
                cell_id,
                campaign_id,
                ci,
                wi,
                label,
                workload,
                seed,
                run_key,
                attempts,
            ) = row
            expiry = now + lease_s
            conn.execute(
                "UPDATE cells SET state = 'leased', worker = ?, lease_expiry = ?,"
                " attempts = attempts + 1 WHERE id = ?",
                (worker_id, expiry, cell_id),
            )
            self._event(
                conn,
                campaign_id,
                "leased",
                {
                    "cell": cell_id,
                    "run_key": run_key,
                    "worker": worker_id,
                    "attempt": attempts + 1,
                },
                now,
            )
            return LeasedCell(
                cell_id=cell_id,
                campaign_id=campaign_id,
                config_index=ci,
                workload_index=wi,
                config_label=label,
                workload=workload,
                seed=seed,
                run_key=run_key,
                attempts=attempts + 1,
                lease_expiry=expiry,
            )

        return self._write(body)

    def heartbeat(
        self,
        cell_id: int,
        worker_id: str,
        *,
        lease_s: float = DEFAULT_LEASE_S,
        now: float | None = None,
    ) -> bool:
        """Extend a held lease; ``False`` means the lease was lost.

        The ownership check is part of the UPDATE's WHERE clause, so a
        worker whose lease lapsed (and was re-leased elsewhere) learns
        it here and must abandon the cell rather than publish state
        transitions for it.
        """
        now = time.time() if now is None else now

        def body(conn):
            cur = conn.execute(
                "UPDATE cells SET lease_expiry = ? WHERE id = ? AND worker = ?"
                " AND state = 'leased'",
                (now + lease_s, cell_id, worker_id),
            )
            return cur.rowcount == 1

        return self._write(body)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finish(
        self,
        cell_id: int,
        worker_id: str,
        now: float,
        *,
        to_state: str,
        kind: str,
        detail_extra: dict,
        error: str | None = None,
    ) -> bool:
        def body(conn):
            row = conn.execute(
                "SELECT campaign_id, run_key, attempts FROM cells"
                " WHERE id = ? AND worker = ? AND state = 'leased'",
                (cell_id, worker_id),
            ).fetchone()
            if row is None:
                return False  # lease lost; result (if any) is still cached
            campaign_id, run_key, attempts = row
            conn.execute(
                "UPDATE cells SET state = ?, worker = NULL, lease_expiry = NULL,"
                " error = ?, finished_at = ? WHERE id = ?",
                (to_state, error, now, cell_id),
            )
            self._event(
                conn,
                campaign_id,
                kind,
                {
                    "cell": cell_id,
                    "run_key": run_key,
                    "worker": worker_id,
                    "attempts": attempts,
                    **detail_extra,
                },
                now,
            )
            return True

        return self._write(body)

    def complete(
        self,
        cell_id: int,
        worker_id: str,
        *,
        cached: bool = False,
        now: float | None = None,
    ) -> bool:
        """Mark a leased cell done (``cached=True`` when the result was
        served from the store rather than executed).  Returns ``False``
        if the lease was lost in the meantime -- harmless, because the
        result is content-addressed: whoever re-runs the cell writes
        identical bytes."""
        now = time.time() if now is None else now
        return self._finish(
            cell_id,
            worker_id,
            now,
            to_state="done",
            kind="done",
            detail_extra={"cached": cached},
        )

    def fail(
        self,
        cell_id: int,
        worker_id: str,
        error: str,
        *,
        now: float | None = None,
    ) -> bool:
        """Report a failed execution: requeue, or quarantine when the
        attempt budget is spent."""
        now = time.time() if now is None else now

        def body(conn):
            row = conn.execute(
                "SELECT c.campaign_id, c.run_key, c.attempts, m.max_attempts"
                " FROM cells c JOIN campaigns m ON m.id = c.campaign_id"
                " WHERE c.id = ? AND c.worker = ? AND c.state = 'leased'",
                (cell_id, worker_id),
            ).fetchone()
            if row is None:
                return False
            campaign_id, run_key, attempts, max_attempts = row
            poisoned = attempts >= max_attempts
            state = "quarantined" if poisoned else "pending"
            conn.execute(
                "UPDATE cells SET state = ?, worker = NULL, lease_expiry = NULL,"
                " error = ?, finished_at = ? WHERE id = ?",
                (state, error, now if poisoned else None, cell_id),
            )
            self._event(
                conn,
                campaign_id,
                "failed",
                {
                    "cell": cell_id,
                    "run_key": run_key,
                    "worker": worker_id,
                    "attempts": attempts,
                    "error": error[:500],
                    "requeued": not poisoned,
                },
                now,
            )
            if poisoned:
                self._event(
                    conn,
                    campaign_id,
                    "quarantined",
                    {"cell": cell_id, "run_key": run_key, "attempts": attempts},
                    now,
                )
            return True

        return self._write(body)

    def has_claimable(self, *, now: float | None = None) -> bool:
        """Whether a claim could plausibly succeed right now.

        A read-only probe (shared lock, no journal write): idle workers
        poll this instead of hammering the write-locked :meth:`claim`
        transaction, which matters when many workers share one core or a
        slow filesystem.  It may say ``True`` for a cell another worker
        snatches first -- the claim itself remains the only arbiter.
        """
        now = time.time() if now is None else now
        with contextlib.closing(self._connect()) as conn:
            return conn.execute(
                "SELECT EXISTS (SELECT 1 FROM cells WHERE state = 'pending'"
                " OR (state = 'leased' AND lease_expiry < ?))",
                (now,),
            ).fetchone()[0] == 1

    def requeue_lapsed(self, *, now: float | None = None) -> None:
        """Recover lapsed leases outside a claim (servers call this
        periodically so progress is visible even with no worker asking)."""
        now = time.time() if now is None else now
        self._write(lambda conn: self._requeue_lapsed(conn, now))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def campaign(self, campaign_id: str) -> dict | None:
        """The stored campaign row (id, name, spec dict, max_attempts)."""
        with contextlib.closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT id, name, spec, max_attempts, submitted_at"
                " FROM campaigns WHERE id = ?",
                (campaign_id,),
            ).fetchone()
        if row is None:
            return None
        cid, name, spec_text, max_attempts, submitted_at = row
        return {
            "id": cid,
            "name": name,
            "spec": json.loads(spec_text),
            "max_attempts": max_attempts,
            "submitted_at": submitted_at,
        }

    def campaigns(self) -> list[dict]:
        """Every campaign with its state counts, oldest first."""
        with contextlib.closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT id, name, submitted_at FROM campaigns ORDER BY submitted_at"
            ).fetchall()
        return [
            {"id": cid, "name": name, "submitted_at": at, **self.counts(cid)}
            for cid, name, at in rows
        ]

    def counts(self, campaign_id: str) -> dict:
        """Cell-state counts of one campaign (zero-filled)."""
        with contextlib.closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM cells WHERE campaign_id = ?"
                " GROUP BY state",
                (campaign_id,),
            ).fetchall()
        counts = {state: 0 for state in CELL_STATES}
        counts.update(dict(rows))
        counts["total"] = sum(counts[state] for state in CELL_STATES)
        return counts

    def cells(self, campaign_id: str) -> list[dict]:
        """Every cell of a campaign, in creation order."""
        with contextlib.closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT id, config_label, workload, seed, run_key, state,"
                " attempts, worker, error FROM cells WHERE campaign_id = ?"
                " ORDER BY id",
                (campaign_id,),
            ).fetchall()
        names = (
            "cell", "config", "workload", "seed", "run_key", "state",
            "attempts", "worker", "error",
        )
        return [dict(zip(names, row)) for row in rows]

    def is_done(self, campaign_id: str) -> bool:
        """Whether every cell of a campaign is in a terminal state."""
        counts = self.counts(campaign_id)
        terminal = sum(counts[state] for state in TERMINAL_STATES)
        return counts["total"] > 0 and terminal == counts["total"]

    def outstanding(self) -> int:
        """Cells not yet in a terminal state, across all campaigns."""
        with contextlib.closing(self._connect()) as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM cells WHERE state IN ('pending', 'leased')"
            ).fetchone()[0]

    def events_since(self, campaign_id: str, seq: int) -> list[dict]:
        """Events of a campaign after ``seq``, oldest first (the watch
        stream's cursor-based page)."""
        with contextlib.closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT seq, at, kind, detail FROM events"
                " WHERE campaign_id = ? AND seq > ? ORDER BY seq",
                (campaign_id, seq),
            ).fetchall()
        return [
            {"seq": s, "at": at, "kind": kind, **json.loads(detail)}
            for s, at, kind, detail in rows
        ]
