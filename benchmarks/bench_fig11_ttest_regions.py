"""Figure 11 + section 5.1.2: the t-test on Experiment 2's conclusion.

The paper tests H0 "mean runtime(32-entry ROB) == mean runtime(64-entry)"
against the one-sided alternative.  This bench computes the test
statistic, shows the acceptance/rejection critical values at several
significance levels (the content of Figure 11), and reports the
wrong-conclusion bound (the smallest level at which H0 is rejected).
"""

from scipy import stats as scipy_stats

from repro.analysis.tables import format_table
from repro.core.hypothesis import TABLE5_LEVELS, two_sample_t_test

from benchmarks import common
from benchmarks.experiments import experiment2_samples


def run_experiment() -> dict:
    samples = experiment2_samples()
    result = two_sample_t_test(samples[32].values, samples[64].values)
    criticals = {
        alpha: float(scipy_stats.t.ppf(1 - alpha, result.degrees_of_freedom))
        for alpha in TABLE5_LEVELS
    }
    return {"test": result, "criticals": criticals}


def report(result: dict) -> str:
    test = result["test"]
    rows = [
        [
            f"{alpha:.3f}",
            f"{critical:.3f}",
            "REJECT H0 (conclude 64 > 32)" if test.statistic > critical else "accept H0",
        ]
        for alpha, critical in result["criticals"].items()
    ]
    table = format_table(
        ["significance level", "critical t", "decision"],
        rows,
        title=(
            f"Figure 11: t = {test.statistic:.3f} with "
            f"{test.degrees_of_freedom:.0f} dof (one-sided p = {test.p_value:.4f})"
        ),
    )
    return table + (
        f"\nwrong-conclusion probability bound: {test.wrong_conclusion_bound:.4f}"
    )


def test_fig11(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    common.print_header("Figure 11: t-test acceptance/rejection regions")
    print(report(result))
    test = result["test"]
    assert 0.0 <= test.p_value <= 1.0
    # When the pair is too close to call (high WCR -- the paper's own
    # characterization of 32 vs 64), the sample means can orient either
    # way; the test's value is the explicit wrong-conclusion bound.
    if test.mean_a > test.mean_b:
        # Conventional orientation: the decision logic is exercised.
        assert test.statistic > 0


if __name__ == "__main__":
    print(report(run_experiment()))
