"""Store backends: where run payloads, the journal, and checkpoints live.

The :class:`~repro.store.store.RunStore` API (keys in, results out) is
backend-independent; this module supplies the persistence strategies
behind it:

- :class:`DirBackend` -- the original layout: one atomic JSON file per
  run under ``runs/``, an ``O_APPEND`` JSONL journal, pickle files under
  ``checkpoints/``.  Ideal for a single machine; concurrent writers are
  safe because every mutation is either an atomic rename or a single
  whole-line append.
- :class:`SQLiteBackend` -- one ``store.sqlite`` database under the same
  root, for N worker processes sharing a store over a common
  filesystem.  Run payloads and checkpoints are rows; journal appends
  are compare-and-set: each entry takes an explicit ``seq`` (primary
  key) computed inside a ``BEGIN IMMEDIATE`` transaction, so the journal
  is a dense, gap-free sequence no matter how many processes append
  concurrently.  WAL is deliberately *not* enabled -- its shared-memory
  index does not work across network filesystems, which are exactly the
  deployment this backend exists for.

Both backends speak the same key space: keys are content addresses
(:mod:`repro.store.keys`), naming a run by its complete cause, so the
same key means the same result bytes on either backend and migrating a
store between backends can never alias two different experiments.  The
never-mix guarantees (warm-started vs cold, timed vs functional) are
carried by the keys themselves and therefore hold identically on both.

Corruption policy is inherited from the store: a payload or journal
entry that fails to parse is skipped with a :class:`RuntimeWarning`,
never raised -- the cost is one re-execution.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import sqlite3
import time
import warnings
from pathlib import Path

#: environment variable selecting the backend ("dir" or "sqlite")
STORE_BACKEND_ENV = "REPRO_STORE_BACKEND"

#: sqlite database filename under the store root
SQLITE_FILENAME = "store.sqlite"

#: how long a writer waits on a locked sqlite database before failing
_SQLITE_BUSY_TIMEOUT_S = 30.0

#: chunk size for IN (...) queries, far below SQLITE_MAX_VARIABLE_NUMBER
_SQLITE_IN_CHUNK = 400


def default_backend_kind() -> str:
    """The backend selected by ``$REPRO_STORE_BACKEND`` (default ``dir``)."""
    kind = os.environ.get(STORE_BACKEND_ENV, "dir").strip() or "dir"
    if kind not in ("dir", "sqlite"):
        raise ValueError(
            f"unknown store backend {kind!r} in ${STORE_BACKEND_ENV} "
            "(expected 'dir' or 'sqlite')"
        )
    return kind


def make_backend(root: Path, kind: str | None = None) -> "StoreBackend":
    """Construct the backend for a store root.

    ``kind`` is ``"dir"``, ``"sqlite"``, or ``None`` to honour
    ``$REPRO_STORE_BACKEND`` (default ``dir``).
    """
    kind = default_backend_kind() if kind is None else kind
    if kind == "dir":
        return DirBackend(root)
    if kind == "sqlite":
        return SQLiteBackend(root)
    raise ValueError(f"unknown store backend {kind!r} (expected 'dir' or 'sqlite')")


class StoreBackend:
    """The contract a store backend fulfils.

    Payloads are the JSON-serializable dicts the store writes per run
    (``{"key", "result", "meta"}``); the backend persists and returns
    them opaquely.  Journal entries are JSON-serializable dicts appended
    in order; readers get them back oldest first.  Checkpoints are
    :class:`~repro.system.checkpoint.Checkpoint` objects (pickled by the
    backend).  All methods must be safe for concurrent use by multiple
    processes sharing the same root.
    """

    #: short backend name ("dir" / "sqlite"), recorded for diagnostics
    kind: str

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # -- run payloads --------------------------------------------------
    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def get_payload(self, key: str) -> dict | None:
        """The stored payload, or ``None`` (missing or corrupt, warned)."""
        raise NotImplementedError

    def get_many_payloads(self, keys: list[str]) -> dict:
        """Payloads for the subset of ``keys`` present, in one pass."""
        raise NotImplementedError

    def contains_many(self, keys: list[str]) -> set:
        """The subset of ``keys`` present, in one pass, without reading
        payloads (what dedup-on-submit wants)."""
        raise NotImplementedError

    def put_payload(self, key: str, payload: dict) -> None:
        raise NotImplementedError

    def delete_payload(self, key: str) -> bool:
        """Remove a payload; ``True`` if something was deleted."""
        raise NotImplementedError

    def keys(self) -> list[str]:
        """All stored run keys, sorted."""
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    # -- journal -------------------------------------------------------
    def append_journal(self, entry: dict) -> None:
        raise NotImplementedError

    def journal_entries(self) -> list[dict]:
        raise NotImplementedError

    # -- checkpoints ---------------------------------------------------
    def get_checkpoint(self, key: str):
        raise NotImplementedError

    def put_checkpoint(self, key: str, checkpoint) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (root + backend kind)."""
        return f"{self.root} [{self.kind}]"


def _warn_corrupt(what: str, exc: Exception) -> None:
    warnings.warn(
        f"run store: skipping corrupt {what}: {exc}", RuntimeWarning, stacklevel=3
    )


# ----------------------------------------------------------------------
# Filesystem backend
# ----------------------------------------------------------------------
def _atomic_write_text(path: Path, text: str) -> None:
    """Write a file so readers see either the old content or the new,
    never a torn mix (write temp in the same directory, then rename)."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class DirBackend(StoreBackend):
    """One file per run under ``runs/``, JSONL journal, pickled checkpoints.

    Concurrency story: run files are written atomically under
    content-addressed names (two writers racing on the same key write
    identical bytes), and journal appends are single whole-line writes
    on an ``O_APPEND`` descriptor, so concurrent writers interleave
    whole lines rather than bytes.
    """

    kind = "dir"

    def __init__(self, root: Path) -> None:
        super().__init__(root)
        self.runs_dir = self.root / "runs"
        self.journal_path = self.root / "journal.jsonl"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """The run file path for a key."""
        return self.runs_dir / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get_payload(self, key: str) -> dict | None:
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            _warn_corrupt(f"entry {path.name}", exc)
            return None

    def get_many_payloads(self, keys: list[str]) -> dict:
        # One runs/ listing resolves which keys exist, then only the
        # present files are opened -- replacing N per-key stat probes
        # (mostly misses, on a fresh campaign) with a single scan.
        wanted = set(keys)
        if not wanted:
            return {}
        present = {
            path.stem for path in self.runs_dir.glob("*.json") if path.stem in wanted
        }
        found = {}
        for key in keys:
            if key in present:
                payload = self.get_payload(key)
                if payload is not None:
                    found[key] = payload
        return found

    def contains_many(self, keys: list[str]) -> set:
        wanted = set(keys)
        if not wanted:
            return set()
        return {
            path.stem for path in self.runs_dir.glob("*.json") if path.stem in wanted
        }

    def put_payload(self, key: str, payload: dict) -> None:
        _atomic_write_text(self.path_for(key), json.dumps(payload))

    def delete_payload(self, key: str) -> bool:
        try:
            os.remove(self.path_for(key))
            return True
        except FileNotFoundError:
            return False

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.runs_dir.glob("*.json"))

    def count(self) -> int:
        return sum(1 for _ in self.runs_dir.glob("*.json"))

    def append_journal(self, entry: dict) -> None:
        line = json.dumps(entry, sort_keys=True) + "\n"
        # A single write on an O_APPEND descriptor: concurrent writers
        # interleave whole lines (POSIX guarantees append atomicity for
        # writes well under PIPE_BUF-scale sizes on local filesystems).
        with open(self.journal_path, "a", encoding="utf-8") as f:
            f.write(line)

    def journal_entries(self) -> list[dict]:
        if not self.journal_path.exists():
            return []
        entries: list[dict] = []
        with open(self.journal_path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    _warn_corrupt(f"journal line {lineno}", exc)
        return entries

    def checkpoint_path_for(self, key: str) -> Path:
        """The cached-checkpoint path for a warm key."""
        return self.root / "checkpoints" / f"{key}.ckpt"

    def get_checkpoint(self, key: str):
        path = self.checkpoint_path_for(key)
        if not path.exists():
            return None
        from repro.system.checkpoint import Checkpoint

        try:
            return Checkpoint.load(path)
        except Exception as exc:  # noqa: BLE001 -- any corruption is a miss
            _warn_corrupt(f"checkpoint {path.name}", exc)
            return None

    def put_checkpoint(self, key: str, checkpoint) -> None:
        path = self.checkpoint_path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        checkpoint.save(tmp)
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# SQLite backend
# ----------------------------------------------------------------------
_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    key     TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS journal (
    seq   INTEGER PRIMARY KEY,
    entry TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    key  TEXT PRIMARY KEY,
    data BLOB NOT NULL
);
"""


class SQLiteBackend(StoreBackend):
    """All store state in one ``store.sqlite`` under the root.

    Built for N processes sharing one store over a common (possibly
    network) filesystem.  Every mutation is one short transaction; the
    journal is append-only with an explicit dense ``seq``: an appender
    takes the write lock (``BEGIN IMMEDIATE``), reads ``MAX(seq)``, and
    inserts ``seq+1`` -- a compare-and-set in which the primary-key
    constraint is the "compare".  Lock contention surfaces as
    ``SQLITE_BUSY``; writers retry with backoff rather than fail, so
    contention costs latency, never corruption or gaps.

    Connections are opened per operation (never cached), which keeps the
    backend safe to use after ``fork()`` and from any thread -- worker
    pools and the threading campaign server both hold ``RunStore``
    objects across process/thread boundaries.
    """

    kind = "sqlite"

    def __init__(self, root: Path) -> None:
        super().__init__(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = self.root / SQLITE_FILENAME
        with contextlib.closing(self._connect()) as conn:
            conn.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.db_path,
            timeout=_SQLITE_BUSY_TIMEOUT_S,
            isolation_level=None,  # explicit transactions only
        )
        return conn

    def _write(self, fn):
        """Run ``fn(conn)`` inside BEGIN IMMEDIATE, retrying on busy.

        ``BEGIN IMMEDIATE`` takes the database write lock up front, so
        the read-modify-write bodies below are serialized across all
        processes; a lock timeout (or a primary-key race, impossible
        under the lock but cheap to guard) retries the whole body.
        """
        delay = 0.01
        for attempt in range(12):
            conn = self._connect()
            try:
                conn.execute("BEGIN IMMEDIATE")
                out = fn(conn)
                conn.execute("COMMIT")
                return out
            except (sqlite3.OperationalError, sqlite3.IntegrityError):
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                if attempt == 11:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.5)
            finally:
                conn.close()
        raise AssertionError("unreachable")

    # -- run payloads --------------------------------------------------
    def contains(self, key: str) -> bool:
        with contextlib.closing(self._connect()) as conn:
            row = conn.execute("SELECT 1 FROM runs WHERE key = ?", (key,)).fetchone()
        return row is not None

    def _parse_payload(self, key: str, text: str) -> dict | None:
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            _warn_corrupt(f"entry {key}", exc)
            return None

    def get_payload(self, key: str) -> dict | None:
        with contextlib.closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT payload FROM runs WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        return self._parse_payload(key, row[0])

    def get_many_payloads(self, keys: list[str]) -> dict:
        if not keys:
            return {}
        found: dict = {}
        with contextlib.closing(self._connect()) as conn:
            for start in range(0, len(keys), _SQLITE_IN_CHUNK):
                chunk = keys[start : start + _SQLITE_IN_CHUNK]
                marks = ",".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT key, payload FROM runs WHERE key IN ({marks})", chunk
                ).fetchall()
                for key, text in rows:
                    payload = self._parse_payload(key, text)
                    if payload is not None:
                        found[key] = payload
        # preserve the caller's key order, as DirBackend does
        return {key: found[key] for key in keys if key in found}

    def contains_many(self, keys: list[str]) -> set:
        if not keys:
            return set()
        present: set = set()
        with contextlib.closing(self._connect()) as conn:
            for start in range(0, len(keys), _SQLITE_IN_CHUNK):
                chunk = keys[start : start + _SQLITE_IN_CHUNK]
                marks = ",".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT key FROM runs WHERE key IN ({marks})", chunk
                ).fetchall()
                present.update(row[0] for row in rows)
        return present

    def put_payload(self, key: str, payload: dict) -> None:
        text = json.dumps(payload)
        self._write(
            lambda conn: conn.execute(
                "INSERT OR REPLACE INTO runs (key, payload) VALUES (?, ?)",
                (key, text),
            )
        )

    def delete_payload(self, key: str) -> bool:
        def body(conn):
            cur = conn.execute("DELETE FROM runs WHERE key = ?", (key,))
            return cur.rowcount > 0

        return self._write(body)

    def keys(self) -> list[str]:
        with contextlib.closing(self._connect()) as conn:
            rows = conn.execute("SELECT key FROM runs ORDER BY key").fetchall()
        return [row[0] for row in rows]

    def count(self) -> int:
        with contextlib.closing(self._connect()) as conn:
            return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    # -- journal -------------------------------------------------------
    def append_journal(self, entry: dict) -> None:
        text = json.dumps(entry, sort_keys=True)

        def body(conn):
            seq = conn.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 FROM journal"
            ).fetchone()[0]
            conn.execute(
                "INSERT INTO journal (seq, entry) VALUES (?, ?)", (seq, text)
            )

        self._write(body)

    def journal_entries(self) -> list[dict]:
        with contextlib.closing(self._connect()) as conn:
            rows = conn.execute("SELECT seq, entry FROM journal ORDER BY seq").fetchall()
        entries: list[dict] = []
        for seq, text in rows:
            try:
                entries.append(json.loads(text))
            except json.JSONDecodeError as exc:
                _warn_corrupt(f"journal entry {seq}", exc)
        return entries

    def journal_seqs(self) -> list[int]:
        """All journal sequence numbers, ascending (CAS-contention tests
        assert density: ``1..N`` with no gaps or duplicates)."""
        with contextlib.closing(self._connect()) as conn:
            rows = conn.execute("SELECT seq FROM journal ORDER BY seq").fetchall()
        return [row[0] for row in rows]

    # -- checkpoints ---------------------------------------------------
    def get_checkpoint(self, key: str):
        with contextlib.closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT data FROM checkpoints WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        from repro.system.checkpoint import Checkpoint

        try:
            checkpoint = pickle.loads(row[0])
            if not isinstance(checkpoint, Checkpoint):
                raise TypeError("row does not contain a Checkpoint")
            return checkpoint
        except Exception as exc:  # noqa: BLE001 -- any corruption is a miss
            _warn_corrupt(f"checkpoint {key}", exc)
            return None

    def put_checkpoint(self, key: str, checkpoint) -> None:
        data = pickle.dumps(checkpoint)
        self._write(
            lambda conn: conn.execute(
                "INSERT OR REPLACE INTO checkpoints (key, data) VALUES (?, ?)",
                (key, data),
            )
        )
