"""Processor core timing models.

Two models, as in the paper (section 3.2.4):

- :class:`repro.proc.simple.SimpleCore` -- the fast blocking model: one
  instruction per cycle when the L1 caches are perfect, stalling for the
  full latency of every memory reference.
- :class:`repro.proc.ooo.OOOCore` -- the TFsim-like model: a four-wide
  out-of-order core with a reorder buffer, a YAGS direction predictor, a
  cascaded indirect predictor and a return-address stack.  The ROB
  overlaps miss latency (memory-level parallelism) and branch
  mispredictions flush the pipeline.

Both expose the same narrow interface consumed by the machine's execution
loop: ``instruction_time``, ``load_stall`` and ``store_stall``.
"""

from repro.proc.branch import (
    BranchSample,
    CascadedIndirectPredictor,
    ReturnAddressStack,
    YagsPredictor,
)
from repro.proc.base import CoreModel, branch_outcome
from repro.proc.ooo import OOOCore
from repro.proc.simple import SimpleCore


def make_core(config, node: int) -> CoreModel:
    """Build the configured core model for one node."""
    if config.processor.model == "simple":
        return SimpleCore(config, node)
    return OOOCore(config, node)


__all__ = [
    "BranchSample",
    "CascadedIndirectPredictor",
    "ReturnAddressStack",
    "YagsPredictor",
    "CoreModel",
    "branch_outcome",
    "OOOCore",
    "SimpleCore",
    "make_core",
]
