"""Ocean: SPLASH-2 ocean-current simulation (paper section 3.1).

The paper runs Ocean with a 514x514 grid: one thread per processor, each
owning a band of grid rows, sweeping its band every iteration with
nearest-neighbour exchanges at the band boundaries, separated by global
barriers.  Like Barnes it is a single-transaction benchmark with very low
space variability (Table 3: CoV 0.31 %, range 1.13 %) -- slightly higher
than Barnes because the boundary-row sharing generates real
cache-to-cache traffic whose latency composition differs run to run.

Only thread 0 emits ``txn_end`` after the final barrier.
"""

from __future__ import annotations

from repro.isa import OP_CPU, OP_MEM, OP_BARRIER, OP_TXN_END
from repro.workloads import address_space as aspace
from repro.workloads.base import Op, Workload, WorkloadClock, WorkloadProgram

BARRIER_SWEEP = 70
BARRIER_REDUCE = 71


class OceanProgram(WorkloadProgram):
    """One worker thread sweeping its band of the grid."""

    # Work is statically partitioned (own warehouse / own band): no
    # shared request stream, hence almost no space variability.
    global_queue = False

    def __init__(self, workload: "OceanWorkload", tid: int, clock: WorkloadClock) -> None:
        super().__init__(workload.name, tid, workload.seed, clock)
        self.w = workload
        self.step = 0
        self.sweep_counter = 0
        self.mem_counter = 0
        self.code_region = 0

    def _cpu(self, ops: list[Op], n: int) -> None:
        self.mem_counter += 1
        code = aspace.code_address(
            self.w.seed,
            self.mem_counter,
            self.w.code_footprint_bytes,
            region=self.code_region,
        )
        ops.append((OP_CPU, n, code))

    def next_ops(self, thread) -> list[Op]:
        if self.finished:
            return []
        if self.step >= self.w.n_steps:
            self.finished = True
            if self.tid == 0:
                return [(OP_TXN_END, 0)]
            return [(OP_CPU, 1, aspace.CODE_BASE)]
        memo = self._memo
        if memo is None:
            ops = self._sweep()
        else:
            ops = self._memo_fetch(memo, self.step, self._sweep)
        self.step += 1
        return ops

    def stream_token(self):
        # Sweeps never read the workload clock; content is keyed entirely
        # on (tid, step, sweep_counter).
        return 0

    def _sweep(self) -> list[Op]:
        ops: list[Op] = []
        n_participants = self.w.total_threads
        points = self.w.scaled(self.w.points_per_sweep)
        for point in range(points):
            self.sweep_counter += 1
            addr = aspace.grid_address(
                self.tid, self.sweep_counter, self.w.rows_per_thread, self.w.row_bytes
            )
            # Red-black sweep: read neighbours, write the point.
            ops.append((OP_MEM, addr, 0))
            ops.append((OP_MEM, addr + self.w.row_bytes, 0))
            ops.append((OP_MEM, addr, 1))
            if point % 8 == 0:
                self._cpu(ops, self.w.scaled(120))
        ops.append((OP_BARRIER, BARRIER_SWEEP, n_participants))
        # Global error reduction: short compute + one shared accumulator
        # touch (thread 0 finalizes).
        self._cpu(ops, self.w.scaled(60))
        ops.append((OP_MEM, aspace.SHARED_BASE + 0x0F00_0000 + (self.step % 8) * 64, 1))
        ops.append((OP_BARRIER, BARRIER_REDUCE, n_participants))
        return ops

    def extra_state(self) -> dict:
        return {
            "step": self.step,
            "sweep_counter": self.sweep_counter,
            "mem_counter": self.mem_counter,
        }

    def restore_extra(self, extra: dict) -> None:
        self.step = extra["step"]
        self.sweep_counter = extra["sweep_counter"]
        self.mem_counter = extra["mem_counter"]


class OceanWorkload(Workload):
    """SPLASH-2 Ocean, 514x514 grid, one thread per processor."""

    name = "ocean"
    threads_per_cpu = 1
    code_footprint_bytes = 96 * 1024
    static_branches = 96
    taken_bias_milli = 900
    flip_noise_milli = 8
    indirect_milli = 2
    return_milli = 20

    n_steps = 10
    points_per_sweep = 40
    rows_per_thread = 16  # 514 rows / 16 threads
    row_bytes = 2 * 1024  # 514 doubles, padded

    def __init__(self, seed: int = 12345, scale: float = 1.0, n_cpus: int = 16) -> None:
        super().__init__(seed=seed, scale=scale)
        self.total_threads = self.threads_per_cpu * n_cpus

    def n_threads(self, n_cpus: int) -> int:
        self.total_threads = self.threads_per_cpu * n_cpus
        return self.total_threads

    def make_program(self, tid: int, clock: WorkloadClock) -> OceanProgram:
        return OceanProgram(self, tid, clock)
