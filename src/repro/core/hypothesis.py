"""Hypothesis testing (paper section 5.1.2).

To conclude that configuration B outperforms configuration A, test the
hypothesis H0 that the true means are equal against the one-sided
alternative.  With equal sample sizes n and unknown variances, the paper
uses the statistic

    t = (ybar_A - ybar_B) / sqrt(s_A^2/n + s_B^2/n)

against the t-distribution with 2n-2 degrees of freedom.  Rejecting H0 at
significance level alpha bounds the wrong-conclusion probability by
alpha (the type I error).

``runs_needed`` reproduces the paper's Table 5: the minimum number of
runs per configuration at which the test rejects H0 at each significance
level, found by evaluating the statistic on growing prefixes of the
samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats

from repro.core.metrics import mean, sample_stddev

#: the significance levels of the paper's Table 5
TABLE5_LEVELS = (0.10, 0.05, 0.025, 0.01, 0.005)


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sample comparison test."""

    statistic: float
    degrees_of_freedom: float
    p_value: float  # one-sided
    mean_a: float
    mean_b: float

    def rejects_at(self, alpha: float) -> bool:
        """Whether H0 (equal means) is rejected at significance alpha."""
        return self.p_value < alpha

    @property
    def wrong_conclusion_bound(self) -> float:
        """The smallest bound this test places on the wrong-conclusion
        probability (the one-sided p-value itself)."""
        return self.p_value


def two_sample_t_test(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    *,
    welch: bool = False,
) -> TTestResult:
    """One-sided test of H0: mean_a == mean_b vs H1: mean_a > mean_b.

    Orient the samples so the alternative of interest is "A's metric is
    larger" (e.g. A = the configuration expected to be slower, with
    cycles per transaction as the metric).  ``welch=True`` uses the
    Welch-Satterthwaite degrees of freedom instead of the paper's 2n-2.
    """
    n_a, n_b = len(sample_a), len(sample_b)
    if n_a < 2 or n_b < 2:
        raise ValueError("both samples need at least two runs")
    mean_a, mean_b = mean(sample_a), mean(sample_b)
    var_a = sample_stddev(sample_a) ** 2
    var_b = sample_stddev(sample_b) ** 2
    se = math.sqrt(var_a / n_a + var_b / n_b)
    if se == 0:
        raise ValueError("zero variance in both samples; test undefined")
    statistic = (mean_a - mean_b) / se
    if welch:
        numerator = (var_a / n_a + var_b / n_b) ** 2
        denominator = (var_a / n_a) ** 2 / (n_a - 1) + (var_b / n_b) ** 2 / (n_b - 1)
        df = numerator / denominator
    else:
        df = n_a + n_b - 2
    p_value = float(_scipy_stats.t.sf(statistic, df))
    return TTestResult(
        statistic=statistic,
        degrees_of_freedom=df,
        p_value=p_value,
        mean_a=mean_a,
        mean_b=mean_b,
    )


def runs_needed(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    significance_levels: Sequence[float] = TABLE5_LEVELS,
) -> dict[float, int | None]:
    """Minimum runs per configuration to reject H0 at each level.

    Evaluates the test statistic on the first n observations of both
    samples for growing n (the paper's Table 5 procedure) and records the
    smallest n that rejects; None when even the full samples do not.
    """
    max_n = min(len(sample_a), len(sample_b))
    needed: dict[float, int | None] = {level: None for level in significance_levels}
    for n in range(2, max_n + 1):
        result = two_sample_t_test(sample_a[:n], sample_b[:n])
        for level in significance_levels:
            if needed[level] is None and result.rejects_at(level):
                needed[level] = n
    return needed
