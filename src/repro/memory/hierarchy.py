"""The assembled memory hierarchy.

:class:`MemoryHierarchy` owns, for each of the 16 nodes, split L1
instruction/data caches and a unified L2, plus the shared crossbar and the
distributed memory controllers.  Processor models call :meth:`access` for
every memory reference and receive the reference's latency in nanoseconds.

Coherence is the table-driven MOSI protocol from
:mod:`repro.memory.coherence`.  Each L2 miss is resolved atomically in
time: the requesting controller is stepped through its transient states
(IS_D / IM_D / SM_D / OM_D) while every remote copy observes the
corresponding OTHER_* event, exactly as the protocol table dictates.  A
directory (owner + sharer sets derived from L2 states) accelerates the
snoop lookup; semantics are identical to broadcasting to all nodes.

Two timing couplings make the hierarchy sensitive to small perturbations,
which is the paper's central mechanism:

- **per-block busy windows**: two racing requests to one block serialize,
  so whichever arrives second -- a timing-dependent outcome -- pays extra
  latency (this is how lock hand-offs become order-dependent); and
- **interconnect / DRAM occupancy**: bursts of misses queue.

Finally, the **perturbation hook** (paper section 3.3) adds a uniformly
distributed pseudo-random 0..max_ns to every L2 miss.  With a fresh seed
per run this creates the space of possible executions the methodology
samples from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.coherence import (
    MOSIState,
    PROTOCOL_HAS_E,
    PROTOCOL_OWNER_STATES,
    ProtocolEvent,
    apply_event,
    is_readable,
    is_writable,
    transitions_for,
)
from repro.memory.dram import MemoryController
from repro.memory.interconnect import Crossbar
from repro.sim.rng import RandomStream

#: L1 line permission tags (the L1s are not coherence points; they mirror
#: a subset of the local L2 state under inclusion).
L1_READ_ONLY = "RO"
L1_READ_WRITE = "RW"


@dataclass
class AccessResult:
    """Outcome of one memory reference."""

    latency_ns: int
    source: str  # "l1" | "l2" | "cache" | "memory" | "upgrade"


@dataclass
class HierarchyStats:
    """Aggregate counters across the whole hierarchy."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    cache_to_cache: int = 0
    memory_fetches: int = 0
    upgrades: int = 0
    writebacks: int = 0
    perturbation_total_ns: int = 0
    block_race_stalls: int = 0

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses per L2 access."""
        l2_accesses = self.l2_hits + self.l2_misses
        if l2_accesses == 0:
            return 0.0
        return self.l2_misses / l2_accesses


class MemoryHierarchy:
    """Caches, coherence, interconnect and DRAM for the whole machine."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        n = config.n_cpus
        self.l1i = [SetAssociativeCache(config.l1i, name=f"l1i{i}") for i in range(n)]
        self.l1d = [SetAssociativeCache(config.l1d, name=f"l1d{i}") for i in range(n)]
        self.l2 = [SetAssociativeCache(config.l2, name=f"l2_{i}") for i in range(n)]
        self.crossbar = Crossbar(config.memory, n)
        self.dram = MemoryController(config.memory, n)
        self.stats = HierarchyStats()
        # Table-driven protocol selection (paper 3.2.3: the memory
        # simulator supports a range of protocols as transition tables).
        self.protocol = config.coherence_protocol
        self._table = transitions_for(self.protocol)
        self._owner_states = PROTOCOL_OWNER_STATES[self.protocol]
        self._has_exclusive = PROTOCOL_HAS_E[self.protocol]
        # Directory derived from L2 states: block -> owner node (M or O
        # copy), block -> set of nodes with any readable copy.
        self._owner: dict[int, int] = {}
        self._sharers: dict[int, set[int]] = {}
        # Per-block transaction busy windows (timing-dependent races).
        self._block_busy: dict[int, int] = {}
        # Perturbation stream; reseeded per run by the runner.
        self._perturb = RandomStream(seed=0)
        self._perturb_max = config.perturbation.max_ns

    # ------------------------------------------------------------------
    # Run setup
    # ------------------------------------------------------------------
    def seed_perturbation(self, seed: int) -> None:
        """Install the per-run perturbation stream (paper 3.3)."""
        self._perturb = RandomStream(seed=seed)

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------
    def access(
        self,
        node: int,
        address: int,
        is_write: bool,
        now: int,
        *,
        is_instruction: bool = False,
    ) -> AccessResult:
        """Perform one memory reference and return its latency."""
        self.stats.accesses += 1
        block = address // self.config.l1d.block_bytes
        l1 = self.l1i[node] if is_instruction else self.l1d[node]

        line = l1.lookup(block)
        if line is not None and (not is_write or line.state == L1_READ_WRITE):
            if is_write:
                line.dirty = True
            self.stats.l1_hits += 1
            return AccessResult(latency_ns=l1.config.hit_latency_ns, source="l1")

        # L1 miss (or write to a read-only L1 line): go to the local L2.
        latency = l1.config.hit_latency_ns + self.config.l2.hit_latency_ns
        result = self._l2_access(node, block, is_write, now + latency)
        latency += result.latency_ns

        # Fill the L1 under inclusion.  A write-permission change replaces
        # any stale read-only copy.  L1 write permission requires the L2
        # copy to be M specifically: an E copy is *upgradable* without bus
        # traffic, but the upgrade must pass through the L2 so its state
        # (and dirtiness) tracks the modification.
        l1.evict(block)
        l2_line = self.l2[node].peek(block)
        writable = l2_line is not None and MOSIState(l2_line.state) is MOSIState.M
        victim = l1.insert(
            block,
            L1_READ_WRITE if writable else L1_READ_ONLY,
            dirty=is_write,
        )
        # A dirty L1 victim folds into the L2 copy (inclusion guarantees the
        # L2 holds the block in M, which is already dirty).
        del victim
        return AccessResult(latency_ns=latency, source=result.source)

    def _l2_access(self, node: int, block: int, is_write: bool, now: int) -> AccessResult:
        """Handle a reference that reached the node's L2."""
        cache = self.l2[node]
        line = cache.lookup(block)
        event = ProtocolEvent.STORE if is_write else ProtocolEvent.LOAD
        if line is not None:
            state = MOSIState(line.state)
            transition = apply_event(state, event, self._table)
            if "hit" in transition.actions:
                line.state = transition.next_state.value
                if is_write:
                    line.dirty = True
                self.stats.l2_hits += 1
                return AccessResult(latency_ns=0, source="l2")
            # Upgrade path: the line stays resident in a transient state
            # while the GetM is outstanding.
            line.state = transition.next_state.value
            return self._global_transaction(node, block, is_write, now, upgrading=line)
        # Full miss from I.
        transition = apply_event(MOSIState.I, event, self._table)
        assert transition.next_state in (MOSIState.IS_D, MOSIState.IM_D)
        return self._global_transaction(node, block, is_write, now, upgrading=None)

    def _global_transaction(
        self,
        node: int,
        block: int,
        is_write: bool,
        now: int,
        upgrading,
    ) -> AccessResult:
        """Resolve a GetS/GetM on the interconnect.

        ``upgrading`` is the requestor's resident L2 line when the request
        is an upgrade (SM_D/OM_D), else None.
        """
        self.stats.l2_misses += 1
        latency = 0

        # Serialize racing transactions to the same block.  The stall is
        # capped at one transaction length: CPUs are interleaved at slice
        # granularity, so an uncapped wait could charge cross-slice
        # timestamp skew as contention.
        busy_until = self._block_busy.get(block, 0)
        if busy_until > now:
            stall = min(busy_until - now, self.config.memory.memory_fetch_ns)
            latency += stall
            now += stall
            self.stats.block_race_stalls += 1

        # Paper 3.3: uniformly distributed pseudo-random 0..max on every
        # L2 miss.  This is the injected variability.
        if self._perturb_max > 0:
            jitter = self._perturb.randint(0, self._perturb_max)
            latency += jitter
            self.stats.perturbation_total_ns += jitter

        owner = self._owner.get(block)
        sharers = self._sharers.get(block, set())

        if is_write:
            result = self._resolve_getm(node, block, now + latency, owner, sharers, upgrading)
        else:
            result = self._resolve_gets(node, block, now + latency, owner, sharers)
        latency += result.latency_ns

        self._block_busy[block] = now + latency
        return AccessResult(latency_ns=latency, source=result.source)

    def _resolve_gets(
        self, node: int, block: int, now: int, owner: int | None, sharers: set[int]
    ) -> AccessResult:
        """Resolve a load miss: data from the owner cache or from memory."""
        if owner is not None and owner != node:
            # Owner observes OTHER_GETS: M -> O (MOSI/MOESI) or M -> S
            # with writeback (MESI); E -> S.  It supplies the data.
            self._apply_remote(owner, block, ProtocolEvent.OTHER_GETS)
            latency = self.crossbar.round_trip(now) + self.config.memory.cache_provide_ns
            source = "cache"
            self.stats.cache_to_cache += 1
            # The supplier may have dropped out of the owner states
            # (MESI M->S): ownership reverts to memory.
            supplier = self.l2[owner].peek(block)
            if supplier is None or MOSIState(supplier.state) not in self._owner_states:
                self._owner.pop(block, None)
        else:
            latency = self.crossbar.round_trip(now) + self.dram.read(block, now)
            source = "memory"
            self.stats.memory_fetches += 1
        # Requestor: IS_D + OWN_DATA -> S; with no other copy and an
        # E-capable protocol, IS_D + OWN_DATA_EXCL -> E.
        exclusive = self._has_exclusive and owner is None and not (sharers - {node})
        fill_state = MOSIState.E if exclusive else MOSIState.S
        self._fill(node, block, fill_state, dirty=False)
        self._sharers.setdefault(block, set()).add(node)
        if exclusive:
            self._owner[block] = node
        return AccessResult(latency_ns=latency, source=source)

    def _resolve_getm(
        self,
        node: int,
        block: int,
        now: int,
        owner: int | None,
        sharers: set[int],
        upgrading,
    ) -> AccessResult:
        """Resolve a store miss/upgrade: invalidate all other copies."""
        # Remote copies observe OTHER_GETM.
        data_from_cache = False
        for sharer in sorted(sharers - {node}):
            self._apply_remote(sharer, block, ProtocolEvent.OTHER_GETM)
        if owner is not None and owner != node:
            data_from_cache = True

        if upgrading is not None:
            # SM_D/OM_D + OWN_ACK -> M.  Invalidation round trip only; the
            # requestor already holds the data.
            transition = apply_event(MOSIState(upgrading.state), ProtocolEvent.OWN_ACK, self._table)
            upgrading.state = transition.next_state.value
            upgrading.dirty = True
            latency = self.crossbar.round_trip(now)
            source = "upgrade"
            self.stats.upgrades += 1
        elif data_from_cache:
            latency = self.crossbar.round_trip(now) + self.config.memory.cache_provide_ns
            source = "cache"
            self.stats.cache_to_cache += 1
            self._fill(node, block, MOSIState.M, dirty=True)
        else:
            latency = self.crossbar.round_trip(now) + self.dram.read(block, now)
            source = "memory"
            self.stats.memory_fetches += 1
            self._fill(node, block, MOSIState.M, dirty=True)

        # Directory: the requestor is now the sole owner.
        self._owner[block] = node
        self._sharers[block] = {node}
        return AccessResult(latency_ns=latency, source=source)

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------
    def _apply_remote(self, node: int, block: int, event: ProtocolEvent) -> None:
        """Apply a remote-observed event at one node's L2 (and L1s)."""
        line = self.l2[node].peek(block)
        if line is None:
            return
        transition = apply_event(MOSIState(line.state), event, self._table)
        if "writeback" in transition.actions:
            # MESI: a read-shared M copy flushes to memory (no O state).
            self.dram.writeback(block, self._block_busy.get(block, 0))
            self.stats.writebacks += 1
            line.dirty = False
        if "deallocate" in transition.actions:
            self.l2[node].evict(block)
            self._drop_l1(node, block)
            self._directory_remove(node, block)
        else:
            line.state = transition.next_state.value
            if transition.next_state is MOSIState.O:
                # Ownership retained; nothing else to do (data transfer is
                # accounted by the requestor's latency).
                pass
            # Losing write permission demotes any RW L1 copy.
            self._demote_l1(node, block)

    def _fill(self, node: int, block: int, state: MOSIState, dirty: bool) -> None:
        """Install an arriving block in a node's L2, handling the victim."""
        cache = self.l2[node]
        existing = cache.peek(block)
        if existing is not None:
            # IM_D after a racing OTHER_GETM stripped us while upgrading:
            # the line object is still resident; just overwrite its state.
            existing.state = state.value
            existing.dirty = dirty
            return
        victim = cache.insert(block, state.value, dirty=dirty)
        if victim is not None:
            self._handle_l2_eviction(node, victim)

    def _handle_l2_eviction(self, node: int, victim) -> None:
        """Run the replacement leg of the protocol for an evicted line."""
        state = MOSIState(victim.state)
        transition = apply_event(state, ProtocolEvent.REPLACEMENT, self._table)
        if "issue_putm" in transition.actions:
            # MI_A/OI_A + WB_ACK -> writeback to the home controller, off
            # the requestor's critical path.
            apply_event(transition.next_state, ProtocolEvent.WB_ACK, self._table)
            self.dram.writeback(victim.block, self._block_busy.get(victim.block, 0))
            self.stats.writebacks += 1
        self._drop_l1(node, victim.block)
        self._directory_remove(node, victim.block)

    def _directory_remove(self, node: int, block: int) -> None:
        """Remove a node's copy from the directory."""
        sharers = self._sharers.get(block)
        if sharers is not None:
            sharers.discard(node)
            if not sharers:
                self._sharers.pop(block, None)
        if self._owner.get(block) == node:
            self._owner.pop(block, None)

    def _drop_l1(self, node: int, block: int) -> None:
        """Invalidate a block in both L1s of a node (inclusion)."""
        self.l1i[node].evict(block)
        self.l1d[node].evict(block)

    def _demote_l1(self, node: int, block: int) -> None:
        """Strip write permission from an L1 copy after an L2 demotion."""
        line = self.l1d[node].peek(block)
        if line is not None:
            line.state = L1_READ_ONLY

    # ------------------------------------------------------------------
    # Invariant checking (tests + debugging)
    # ------------------------------------------------------------------
    def check_coherence_invariants(self) -> list[str]:
        """Verify the single-writer / directory-consistency invariants.

        Returns a list of violations (empty when coherent).  O(total
        resident lines); intended for tests, not the hot path.
        """
        problems: list[str] = []
        by_block: dict[int, list[tuple[int, MOSIState]]] = {}
        for node in range(self.config.n_cpus):
            for block in self.l2[node].resident_blocks():
                line = self.l2[node].peek(block)
                by_block.setdefault(block, []).append((node, MOSIState(line.state)))
        for block, copies in by_block.items():
            m_holders = [n for n, s in copies if s in (MOSIState.M, MOSIState.E)]
            owners = [n for n, s in copies if s in self._owner_states]
            readable = {n for n, s in copies if is_readable(s)}
            if len(m_holders) > 1:
                problems.append(f"block {block}: multiple M copies {m_holders}")
            if m_holders and len(readable) > 1:
                problems.append(f"block {block}: M copy coexists with sharers")
            if len(owners) > 1:
                problems.append(f"block {block}: multiple owners {owners}")
            dir_owner = self._owner.get(block)
            if owners and dir_owner != owners[0]:
                problems.append(
                    f"block {block}: directory owner {dir_owner} != actual {owners[0]}"
                )
            dir_sharers = self._sharers.get(block, set())
            if readable != dir_sharers:
                problems.append(
                    f"block {block}: directory sharers {sorted(dir_sharers)} != "
                    f"actual {sorted(readable)}"
                )
        return problems

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Return the full checkpointable memory-system state."""
        return {
            "l1i": [c.snapshot() for c in self.l1i],
            "l1d": [c.snapshot() for c in self.l1d],
            "l2": [c.snapshot() for c in self.l2],
            "owner": dict(self._owner),
            "sharers": {b: set(s) for b, s in self._sharers.items()},
            "block_busy": dict(self._block_busy),
            "crossbar": self.crossbar.snapshot(),
            "dram": self.dram.snapshot(),
            "perturb": self._perturb.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore from a :meth:`snapshot` value."""
        self.l1i = [
            SetAssociativeCache.restore(self.config.l1i, s, name=f"l1i{i}")
            for i, s in enumerate(state["l1i"])
        ]
        self.l1d = [
            SetAssociativeCache.restore(self.config.l1d, s, name=f"l1d{i}")
            for i, s in enumerate(state["l1d"])
        ]
        self.l2 = [
            SetAssociativeCache.restore(self.config.l2, s, name=f"l2_{i}")
            for i, s in enumerate(state["l2"])
        ]
        self._owner = dict(state["owner"])
        self._sharers = {b: set(s) for b, s in state["sharers"].items()}
        self._block_busy = dict(state["block_busy"])
        self.crossbar.restore_state(state["crossbar"])
        self.dram.restore_state(state["dram"])
        self._perturb = RandomStream.restore(state["perturb"])
        self.stats = HierarchyStats()
