"""Tests for the probe bus and its zero-cost attachment contract."""

import pytest

from repro.config import RunConfig, SystemConfig
from repro.isa import OP_MEM, OP_TXN_END
from repro.probes import (
    CacheTrafficProbe,
    LockContentionProbe,
    OpCountProbe,
    ProbeBus,
    ScheduleTraceProbe,
    TransactionLogProbe,
)
from repro.system.machine import Machine
from repro.system.simulation import run_simulation
from repro.workloads.registry import make_workload
from tests.conftest import small_machine as _small_machine


def small_machine(workload_name="oltp", n_cpus=2, seed=7):
    # Probe tests use full-width workloads (the oltp class default of 8
    # threads/cpu), unlike the slimmed conftest default.
    workload = make_workload(workload_name)
    return _small_machine(n_cpus=n_cpus, workload=workload, seed_value=seed)


class TestProbeBus:
    def test_unknown_hook_rejected(self):
        with pytest.raises(ValueError):
            ProbeBus().on("nope", lambda: None)

    def test_merged_empty_is_none(self):
        assert ProbeBus().merged("op") is None

    def test_merged_single_is_the_callback(self):
        def cb(*args):
            pass

        bus = ProbeBus().on_op(cb)
        assert bus.merged("op") is cb

    def test_merged_fans_out_in_registration_order(self):
        seen = []
        bus = ProbeBus()
        bus.on_txn(lambda *a: seen.append(("first", a)))
        bus.on_txn(lambda *a: seen.append(("second", a)))
        bus.merged("txn")(1, 2, 3)
        assert seen == [("first", (1, 2, 3)), ("second", (1, 2, 3))]

    def test_bool_reflects_registration(self):
        bus = ProbeBus()
        assert not bus
        bus.on_sched(lambda *a: None)
        assert bus

    def test_attach_collector_wires_matching_hooks(self):
        bus = ProbeBus()
        probe = LockContentionProbe()
        bus.attach(probe)
        assert bus.callbacks("lock") == [probe.on_lock]
        assert bus.callbacks("op") == []

    def test_attach_hookless_object_rejected(self):
        with pytest.raises(ValueError):
            ProbeBus().attach(object())


class TestMachineIntegration:
    def test_op_probe_sees_every_dispatched_op(self):
        machine = small_machine()
        counter = OpCountProbe()
        machine.attach_probes(ProbeBus().attach(counter))
        machine.run_until_transactions(10, max_time_ns=10**12)
        fetched = sum(t.ops_fetched for t in machine.scheduler.threads.values())
        assert counter.total > 0
        # Every fetched op is dispatched at most once; unconsumed buffer
        # tails account for the difference.
        assert counter.total <= fetched
        assert counter.counts[OP_MEM] > 0
        assert counter.counts[OP_TXN_END] >= 10
        assert counter.by_name()["txn_end"] == counter.counts[OP_TXN_END]

    def test_txn_probe_matches_completed_count(self):
        machine = small_machine()
        log = TransactionLogProbe()
        machine.attach_probes(ProbeBus().attach(log))
        machine.run_until_transactions(12, max_time_ns=10**12)
        assert len(log.completions) == machine.completed_transactions

    def test_lock_probe_counts_match_machine_stats(self):
        machine = small_machine(n_cpus=4)
        contention = LockContentionProbe()
        machine.attach_probes(ProbeBus().attach(contention))
        machine.run_until_transactions(60, max_time_ns=10**12)
        blocks = sum(
            t.stats.lock_blocks for t in machine.scheduler.threads.values()
        )
        assert sum(contention.blocks.values()) == blocks

    def test_sched_probe_counts_dispatches(self):
        machine = small_machine()
        trace = ScheduleTraceProbe()
        machine.attach_probes(ProbeBus().attach(trace))
        machine.run_until_transactions(5, max_time_ns=10**12)
        assert len(trace.decisions) == machine.scheduler.dispatches

    def test_cache_probe_sees_global_transactions(self):
        machine = small_machine()
        traffic = CacheTrafficProbe()
        machine.attach_probes(ProbeBus().attach(traffic))
        machine.run_until_transactions(10, max_time_ns=10**12)
        stats = machine.hierarchy.stats
        expected = stats.cache_to_cache + stats.memory_fetches + stats.upgrades
        assert sum(traffic.by_source) == expected
        assert traffic.reads + traffic.writes == sum(traffic.by_source)

    def test_detach_restores_raw_dispatch(self):
        machine = small_machine()
        raw_table = list(machine._dispatch)
        counter = OpCountProbe()
        machine.attach_probes(ProbeBus().attach(counter))
        assert machine._dispatch != raw_table
        machine.detach_probes()
        assert machine._dispatch == raw_table
        assert machine.probes is None

    def test_empty_bus_installs_nothing(self):
        machine = small_machine()
        raw_table = list(machine._dispatch)
        machine.attach_probes(ProbeBus())
        assert machine._dispatch == raw_table
        assert machine._probe_lock is None
        assert machine.hierarchy._probe_cache is None

    def test_probed_run_is_bit_identical(self):
        """Observation must not perturb the simulation (zero-cost in
        *behaviour*, not just speed)."""

        def run(attach):
            machine = small_machine(n_cpus=4, seed=11)
            if attach:
                bus = ProbeBus()
                for probe in (
                    OpCountProbe(),
                    CacheTrafficProbe(),
                    LockContentionProbe(),
                    ScheduleTraceProbe(),
                    TransactionLogProbe(),
                ):
                    bus.attach(probe)
                machine.attach_probes(bus)
            machine.run_until_transactions(25, max_time_ns=10**12)
            return (machine.clock.now, machine.hierarchy.stats)

        assert run(False) == run(True)

    def test_lock_probe_event_kinds(self):
        machine = small_machine(n_cpus=4)
        events = []
        machine.attach_probes(
            ProbeBus().on_lock(lambda ev, now, tid, lock: events.append(ev))
        )
        machine.run_until_transactions(60, max_time_ns=10**12)
        assert set(events) <= {"block", "handoff"}


def _full_collector_bus() -> ProbeBus:
    bus = ProbeBus()
    for probe in (
        OpCountProbe(),
        CacheTrafficProbe(),
        LockContentionProbe(),
        ScheduleTraceProbe(),
        TransactionLogProbe(),
    ):
        bus.attach(probe)
    return bus


def _golden_scenario_digest(name, prepare) -> tuple[str, str]:
    """Run golden scenario ``name`` after ``prepare(machine)``; return
    (digest, committed golden digest).  Reassembles exactly the blob that
    ``golden_digest()`` hashes (no warmup, so the window starts at t=0)."""
    import hashlib

    from repro.sim.rng import stream_seed
    from tests.test_golden_determinism import SCENARIOS, STAT_KEYS, load_golden

    scenario = SCENARIOS[name]
    config = scenario.get("config", lambda: SystemConfig(n_cpus=4))()
    workload = make_workload(scenario["workload"], **scenario["params"])
    machine = Machine(config, workload)
    machine.hierarchy.seed_perturbation(stream_seed(9, "perturbation"))
    machine.transaction_log = []
    prepare(machine)
    end_ns = machine.run_until_transactions(scenario["txns"], max_time_ns=10**13)
    stats = machine.hierarchy.stats
    blob = repr(
        (
            end_ns,
            machine.completed_transactions,
            sorted(
                (t, k) for t, k in machine.transaction_log if 0 <= t <= end_ns
            ),
            [(key, int(getattr(stats, key))) for key in STAT_KEYS],
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest(), load_golden()[name]


class TestGoldenRoundTrip:
    @pytest.mark.parametrize("name", ["oltp", "oltp-mesi"])
    def test_attach_detach_reproduces_golden_digest(self, name):
        """Attaching a full collector bus and detaching it again must leave
        the machine bit-for-bit pristine: the raw dispatch table and every
        probe hook are restored exactly, so the committed golden digest is
        still reproduced."""

        def attach_then_detach(machine):
            machine.attach_probes(_full_collector_bus())
            machine.detach_probes()

        digest, golden = _golden_scenario_digest(name, attach_then_detach)
        assert digest == golden

    @pytest.mark.parametrize("name", ["oltp", "oltp-mesi"])
    def test_probed_run_reproduces_golden_digest(self, name):
        """A run observed by every collector the whole way through still
        reproduces the committed golden digest: probes are transparent in
        behaviour, not just approximately."""
        digest, golden = _golden_scenario_digest(
            name, lambda machine: machine.attach_probes(_full_collector_bus())
        )
        assert digest == golden


class TestRunSimulationIntegration:
    def test_probes_via_run_simulation(self):
        counter = OpCountProbe()
        log = TransactionLogProbe()
        bus = ProbeBus().attach(counter).attach(log)
        result = run_simulation(
            SystemConfig(n_cpus=2),
            "oltp",
            RunConfig(measured_transactions=8, seed=3),
            probes=bus,
        )
        assert result.measured_transactions == 8
        assert counter.total > 0
        assert len(log.completions) == 8
