"""Tests for the persistent run store: keys, serialization, durability."""

import json
import random

import pytest

from repro.config import (
    CacheConfig,
    MemoryConfig,
    OSConfig,
    PerturbationConfig,
    ProcessorConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.runner import RunSample, run_space
from repro.store import RunStore, canonical_json, run_key
from repro.system.simulation import SimulationResult

CONFIG = SystemConfig(n_cpus=4)
RUN = RunConfig(measured_transactions=10, seed=3)


def random_system_config(rng: random.Random) -> SystemConfig:
    """A randomized-but-valid SystemConfig (property-test generator)."""
    block = rng.choice([32, 64])
    assoc = rng.choice([1, 2, 4])
    return SystemConfig(
        n_cpus=rng.choice([2, 4, 8, 16]),
        l1i=CacheConfig(size_bytes=assoc * block * rng.choice([16, 32]),
                        associativity=assoc, block_bytes=block),
        l1d=CacheConfig(size_bytes=8 * 1024, associativity=4),
        l2=CacheConfig(size_bytes=256 * 1024, associativity=4, hit_latency_ns=20),
        memory=MemoryConfig(dram_latency_ns=rng.choice([80, 120, 200])),
        processor=ProcessorConfig(model=rng.choice(["simple", "ooo"]),
                                  rob_entries=rng.choice([32, 64, 128])),
        os=OSConfig(quantum_ns=rng.choice([100_000, 200_000])),
        perturbation=PerturbationConfig(max_ns=rng.choice([0, 4, 16])),
        coherence_protocol=rng.choice(["mosi", "mesi", "moesi"]),
    )


def random_run_config(rng: random.Random) -> RunConfig:
    return RunConfig(
        measured_transactions=rng.randint(1, 500),
        warmup_transactions=rng.randint(0, 100),
        seed=rng.randint(0, 10**6),
        max_time_ns=rng.choice([10**9, 30 * 10**9]),
    )


class TestKeys:
    def test_same_inputs_same_key(self):
        """Property: key is a pure function of the run's cause."""
        rng = random.Random(7)
        for _ in range(20):
            config = random_system_config(rng)
            run = random_run_config(rng)
            k1 = run_key(config, run, "oltp", 12345, 1.0, {"threads_per_cpu": 2})
            k2 = run_key(
                SystemConfig.from_dict(config.to_dict()),
                RunConfig.from_dict(run.to_dict()),
                "oltp", 12345, 1.0, {"threads_per_cpu": 2},
            )
            assert k1 == k2

    def test_any_field_change_changes_key(self):
        base = run_key(CONFIG, RUN, "oltp", 12345, 1.0, {})
        assert run_key(CONFIG.with_dram_latency(200), RUN, "oltp", 12345, 1.0, {}) != base
        assert run_key(CONFIG, RunConfig(measured_transactions=10, seed=4),
                       "oltp", 12345, 1.0, {}) != base
        assert run_key(CONFIG, RUN, "apache", 12345, 1.0, {}) != base
        assert run_key(CONFIG, RUN, "oltp", 999, 1.0, {}) != base
        assert run_key(CONFIG, RUN, "oltp", 12345, 2.0, {}) != base
        assert run_key(CONFIG, RUN, "oltp", 12345, 1.0, {"threads_per_cpu": 2}) != base
        assert run_key(CONFIG, RUN, "oltp", 12345, 1.0, {},
                       checkpoint_digest="abc") != base

    def test_param_order_irrelevant(self):
        a = run_key(CONFIG, RUN, "oltp", 12345, 1.0,
                    {"threads_per_cpu": 2, "n_hot_districts": 3})
        b = run_key(CONFIG, RUN, "oltp", 12345, 1.0,
                    {"n_hot_districts": 3, "threads_per_cpu": 2})
        assert a == b

    def test_canonical_json_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestSerializationRoundTrip:
    def test_system_config_round_trip(self):
        """Property: from_dict(to_dict(x)) == x over randomized configs."""
        rng = random.Random(21)
        for _ in range(25):
            config = random_system_config(rng)
            assert SystemConfig.from_dict(config.to_dict()) == config
            # and the dict form survives actual JSON text
            assert SystemConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_run_config_round_trip(self):
        rng = random.Random(22)
        for _ in range(25):
            run = random_run_config(rng)
            assert RunConfig.from_dict(run.to_dict()) == run

    def test_simulation_result_round_trip(self):
        sample = run_space(CONFIG, "oltp", RUN, 1,
                           workload_params={"threads_per_cpu": 2})
        result = sample.results[0]
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result

    def test_simulation_result_with_times_round_trip(self):
        from repro.system.simulation import run_simulation

        result = run_simulation(CONFIG, "oltp", RUN, collect_transaction_times=True,
                                collect_schedule_trace=True)
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        assert restored.transaction_times == result.transaction_times

    def test_run_sample_round_trip(self):
        sample = run_space(CONFIG, "oltp", RUN, 2,
                           workload_params={"threads_per_cpu": 2})
        restored = RunSample.from_dict(json.loads(json.dumps(sample.to_dict())))
        assert restored == sample
        assert restored.values == sample.values


class TestRunStore:
    def test_put_get_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        sample = run_space(CONFIG, "oltp", RUN, 1,
                           workload_params={"threads_per_cpu": 2})
        store.put("k1", sample.results[0], workload="oltp")
        assert store.contains("k1")
        assert "k1" in store
        assert store.get("k1") == sample.results[0]
        assert store.get("missing") is None
        assert len(store) == 1
        assert store.keys() == ["k1"]

    def test_journal_records_every_put(self, tmp_path):
        store = RunStore(tmp_path)
        sample = run_space(CONFIG, "oltp", RUN, 2,
                           workload_params={"threads_per_cpu": 2})
        for i, result in enumerate(sample.results):
            store.put(f"k{i}", result, workload="oltp")
        entries = store.journal_entries()
        assert len(entries) == 2
        assert {e["key"] for e in entries} == {"k0", "k1"}
        assert all(e["workload"] == "oltp" for e in entries)

    def test_corrupt_run_file_skipped_with_warning(self, tmp_path):
        store = RunStore(tmp_path)
        sample = run_space(CONFIG, "oltp", RUN, 1,
                           workload_params={"threads_per_cpu": 2})
        store.put("k1", sample.results[0])
        store.path_for("k1").write_text("{ truncated garbage")
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert store.get("k1") is None

    def test_corrupt_journal_line_skipped_with_warning(self, tmp_path):
        store = RunStore(tmp_path)
        sample = run_space(CONFIG, "oltp", RUN, 1,
                           workload_params={"threads_per_cpu": 2})
        store.put("k1", sample.results[0])
        with open(store.journal_path, "a") as f:
            f.write("not json at all\n")
        store.put("k2", sample.results[0])
        with pytest.warns(RuntimeWarning, match="corrupt journal line 2"):
            entries = store.journal_entries()
        assert [e["key"] for e in entries] == ["k1", "k2"]

    def test_store_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "custom"))
        store = RunStore()
        assert store.root == tmp_path / "custom"
        assert store.runs_dir.is_dir()

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = RunStore(tmp_path)
        sample = run_space(CONFIG, "oltp", RUN, 1,
                           workload_params={"threads_per_cpu": 2})
        for i in range(3):
            store.put("same-key", sample.results[0], attempt=i)
        assert len(list(store.runs_dir.iterdir())) == 1


class TestStoreEvents:
    def test_log_event_round_trips_fields(self, tmp_path):
        store = RunStore(tmp_path)
        store.log_event("escalation", campaign="c", action="escalate-cell",
                        reason="flip")
        store.log_event("rebalance", shard=3)
        assert [e["event"] for e in store.events()] == ["escalation", "rebalance"]
        (event,) = store.events("escalation")
        assert event["campaign"] == "c"
        assert event["reason"] == "flip"
        assert "logged_at" in event

    def test_events_excluded_from_journal_length(self, tmp_path):
        store = RunStore(tmp_path)
        sample = run_space(CONFIG, "oltp", RUN, 1,
                           workload_params={"threads_per_cpu": 2})
        store.put("k1", sample.results[0])
        store.log_event("escalation", campaign="c")
        assert store.journal_length() == 1
        assert len(store.events()) == 1

    def test_reserved_event_names_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError, match="invalid event name"):
            store.log_event("")
        with pytest.raises(ValueError, match="invalid event name"):
            store.log_event("delete")

    def test_deletions_surface_as_events(self, tmp_path):
        store = RunStore(tmp_path)
        sample = run_space(CONFIG, "oltp", RUN, 1,
                           workload_params={"threads_per_cpu": 2})
        store.put("k1", sample.results[0])
        store.delete("k1", reason="stale")
        (event,) = store.events("delete")
        assert event["key"] == "k1"
        assert event["reason"] == "stale"


class TestRunSpaceStoreIntegration:
    def test_cached_runs_not_reexecuted(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        kwargs = dict(workload_params={"threads_per_cpu": 2}, store=store)
        first = run_space(CONFIG, "oltp", RUN, 2, **kwargs)
        assert store.journal_length() == 2

        import repro.core.runner as runner_mod

        def boom(_args):
            raise AssertionError("cached run was re-executed")

        monkeypatch.setattr(runner_mod, "_one_run", boom)
        second = run_space(CONFIG, "oltp", RUN, 2, **kwargs)
        assert second.values == first.values
        assert store.journal_length() == 2  # nothing re-executed

    def test_store_results_identical_to_direct(self, tmp_path):
        store = RunStore(tmp_path)
        direct = run_space(CONFIG, "oltp", RUN, 2,
                           workload_params={"threads_per_cpu": 2})
        stored = run_space(CONFIG, "oltp", RUN, 2,
                           workload_params={"threads_per_cpu": 2}, store=store)
        reloaded = run_space(CONFIG, "oltp", RUN, 2,
                             workload_params={"threads_per_cpu": 2}, store=store)
        assert stored.values == direct.values
        assert reloaded.values == direct.values

    def test_checkpoint_digest_stable_across_pickle_round_trip(self):
        """Digest must be a pure function of content, not insertion history.

        Set iteration order depends on how the set was built, so a
        checkpoint digested after save/load must hash identically to the
        freshly captured one -- otherwise cached runs are never reused by
        a second process.
        """
        import pickle

        from repro.system.checkpoint import Checkpoint, _canonicalize
        from repro.system.machine import Machine
        from repro.workloads.registry import make_workload

        a = {0, 2, 10, 3}
        b = pickle.loads(pickle.dumps(a))
        assert pickle.dumps(_canonicalize(a)) == pickle.dumps(_canonicalize(b))

        machine = Machine(SystemConfig(), make_workload("oltp"))
        machine.hierarchy.seed_perturbation(8)
        machine.run_until_transactions(100, max_time_ns=10**13)
        checkpoint = Checkpoint.capture(machine)
        restored = pickle.loads(pickle.dumps(checkpoint))
        assert restored.digest() == checkpoint.digest()

    def test_checkpoint_runs_do_not_collide_with_cold(self, tmp_path):
        from repro.system.checkpoint import Checkpoint
        from repro.system.machine import Machine
        from repro.workloads.registry import make_workload

        store = RunStore(tmp_path)
        machine = Machine(CONFIG, make_workload("oltp", threads_per_cpu=2))
        machine.hierarchy.seed_perturbation(9)
        machine.run_until_transactions(50, max_time_ns=10**12)
        checkpoint = Checkpoint.capture(machine)

        cold = run_space(CONFIG, "oltp", RUN, 1,
                         workload_params={"threads_per_cpu": 2}, store=store)
        warm = run_space(CONFIG, "oltp", RUN, 1,
                         workload_params={"threads_per_cpu": 2}, store=store,
                         checkpoint=checkpoint)
        assert len(store) == 2  # distinct keys
        assert cold.values != warm.values
