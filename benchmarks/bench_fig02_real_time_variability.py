"""Figure 2: OLTP time variability on a real machine (one run).

Paper 2.2: cycles per transaction on a Sun E5000 (12 x 167 MHz), 96
users, ten minutes, observed at 1- / 10- / 60-second intervals.  Short
intervals swing by nearly a factor of three; 60-second intervals are
almost flat.
"""

from repro.analysis.tables import format_table
from repro.core.metrics import summarize
from repro.realsys.e5000 import SunE5000

from benchmarks import common


def run_experiment() -> dict:
    run = SunE5000().run(duration_s=600, users=96, seed=1)
    intervals = {}
    for interval in (1, 10, 60):
        series = run.cycles_per_transaction(interval)
        intervals[interval] = {
            "summary": summarize(series),
            "swing": max(series) / min(series),
        }
    return {"intervals": intervals, "tps": run.total_transactions / run.duration_s}


def report(result: dict) -> str:
    rows = []
    for interval, data in result["intervals"].items():
        s = data["summary"]
        rows.append(
            [
                f"{interval}s",
                f"{s.mean / 1e6:.2f}M",
                f"{s.minimum / 1e6:.2f}M",
                f"{s.maximum / 1e6:.2f}M",
                f"{data['swing']:.2f}x",
                f"{s.coefficient_of_variation:.1f}%",
            ]
        )
    table = format_table(
        ["interval", "mean cyc/txn", "min", "max", "max/min", "CoV"],
        rows,
        title="Figure 2: one E5000 OLTP run at different observation intervals",
    )
    return table + (
        f"\nthroughput: {result['tps']:.0f} txn/s "
        "(paper: over 350 txn/s; factor-~3 swings at 1 s, flat at 60 s)"
    )


def test_fig02(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    common.print_header("Figure 2: real-system time variability")
    print(report(result))
    intervals = result["intervals"]
    assert intervals[1]["swing"] > 2.0          # wide at one second
    assert intervals[60]["swing"] < 1.5         # nearly flat at a minute
    assert (
        intervals[1]["summary"].coefficient_of_variation
        > intervals[10]["summary"].coefficient_of_variation
        > intervals[60]["summary"].coefficient_of_variation
    )


if __name__ == "__main__":
    print(report(run_experiment()))
