"""Tests for the lease-based work queue (no simulation involved).

Time is injected through every operation's ``now`` parameter, so lease
expiry and quarantine are tested deterministically -- no sleeping.
"""

import pytest

from repro.service.queue import WorkQueue


def _cells(n, campaign="c"):
    from repro.service.protocol import Cell

    return [
        Cell(config_index=0, workload_index=0, config_label="base",
             workload="oltp", seed=100 + i, run_key=f"{campaign}-key-{i}")
        for i in range(n)
    ]


@pytest.fixture
def queue(tmp_path):
    return WorkQueue(tmp_path / "queue.sqlite")


class TestSubmitAndClaim:
    def test_submit_enqueues_pending(self, queue):
        cid = queue.submit("study", {"n": 1}, _cells(3), now=1000.0)
        counts = queue.counts(cid)
        assert counts["pending"] == 3 and counts["total"] == 3
        assert not queue.is_done(cid)
        assert queue.outstanding() == 3
        assert queue.campaign(cid)["spec"] == {"n": 1}

    def test_cached_cells_never_leased(self, queue):
        from dataclasses import replace

        cells = _cells(2)
        cells[0] = replace(cells[0], cached=True)
        cid = queue.submit("study", {}, cells, now=1000.0)
        assert queue.counts(cid)["cached"] == 1
        leased = queue.claim("w1", now=1001.0)
        assert leased.run_key == cells[1].run_key
        assert queue.claim("w2", now=1001.0) is None

    def test_claims_are_exclusive_and_ordered(self, queue):
        cid = queue.submit("study", {}, _cells(2), now=1000.0)
        a = queue.claim("w1", now=1001.0)
        b = queue.claim("w2", now=1001.0)
        assert a.cell_id != b.cell_id
        assert a.run_key == "c-key-0" and b.run_key == "c-key-1"  # oldest first
        assert queue.claim("w3", now=1001.0) is None
        assert queue.counts(cid)["leased"] == 2

    def test_submit_rejects_bad_max_attempts(self, queue):
        with pytest.raises(ValueError):
            queue.submit("study", {}, _cells(1), max_attempts=0)


class TestLeaseLifecycle:
    def test_complete(self, queue):
        cid = queue.submit("study", {}, _cells(1), now=1000.0)
        cell = queue.claim("w1", lease_s=30, now=1001.0)
        assert queue.complete(cell.cell_id, "w1", now=1002.0) is True
        assert queue.counts(cid)["done"] == 1
        assert queue.is_done(cid)
        assert queue.outstanding() == 0

    def test_heartbeat_extends_lease(self, queue):
        queue.submit("study", {}, _cells(1), now=1000.0)
        cell = queue.claim("w1", lease_s=30, now=1000.0)
        assert queue.heartbeat(cell.cell_id, "w1", lease_s=30, now=1020.0)
        # would have lapsed at 1030 without the heartbeat
        assert queue.claim("w2", lease_s=30, now=1040.0) is None
        assert queue.complete(cell.cell_id, "w1", now=1045.0)

    def test_heartbeat_from_wrong_worker_fails(self, queue):
        queue.submit("study", {}, _cells(1), now=1000.0)
        cell = queue.claim("w1", lease_s=30, now=1000.0)
        assert not queue.heartbeat(cell.cell_id, "impostor", now=1001.0)

    def test_lapsed_lease_requeues_on_next_claim(self, queue):
        cid = queue.submit("study", {}, _cells(1), now=1000.0)
        first = queue.claim("w1", lease_s=30, now=1000.0)
        assert first.attempts == 1
        # w1 dies silently; after expiry anyone's claim recovers the cell
        second = queue.claim("w2", lease_s=30, now=1031.0)
        assert second is not None
        assert second.cell_id == first.cell_id
        assert second.attempts == 2
        # the dead worker's late transitions are rejected
        assert not queue.heartbeat(first.cell_id, "w1", now=1032.0)
        assert not queue.complete(first.cell_id, "w1", now=1032.0)
        kinds = [e["kind"] for e in queue.events_since(cid, 0)]
        assert kinds == ["submitted", "leased", "lease-expired", "leased"]

    def test_requeue_lapsed_without_claim(self, queue):
        cid = queue.submit("study", {}, _cells(1), now=1000.0)
        queue.claim("w1", lease_s=30, now=1000.0)
        queue.requeue_lapsed(now=1031.0)
        assert queue.counts(cid)["pending"] == 1

    def test_quarantine_after_max_attempts(self, queue):
        cid = queue.submit("study", {}, _cells(1), max_attempts=2, now=1000.0)
        t = 1000.0
        for _ in range(2):
            cell = queue.claim("crashy", lease_s=10, now=t)
            assert cell is not None
            t += 11.0  # lapse without completing
        queue.requeue_lapsed(now=t)
        counts = queue.counts(cid)
        assert counts["quarantined"] == 1
        assert counts["pending"] == 0
        assert queue.is_done(cid)  # quarantined is terminal
        assert queue.claim("w9", now=t) is None
        kinds = [e["kind"] for e in queue.events_since(cid, 0)]
        assert kinds.count("quarantined") == 1

    def test_fail_requeues_then_quarantines(self, queue):
        cid = queue.submit("study", {}, _cells(1), max_attempts=2, now=1000.0)
        cell = queue.claim("w1", now=1000.0)
        assert queue.fail(cell.cell_id, "w1", "boom", now=1001.0)
        assert queue.counts(cid)["pending"] == 1
        cell = queue.claim("w1", now=1002.0)
        assert queue.fail(cell.cell_id, "w1", "boom again", now=1003.0)
        counts = queue.counts(cid)
        assert counts["quarantined"] == 1
        rows = queue.cells(cid)
        assert rows[0]["state"] == "quarantined"
        assert "boom again" in rows[0]["error"]


class TestIntrospection:
    def test_events_cursor(self, queue):
        cid = queue.submit("study", {}, _cells(2), now=1000.0)
        events = queue.events_since(cid, 0)
        assert [e["kind"] for e in events] == ["submitted"]
        cursor = events[-1]["seq"]
        queue.claim("w1", now=1001.0)
        tail = queue.events_since(cid, cursor)
        assert [e["kind"] for e in tail] == ["leased"]
        assert queue.events_since(cid, tail[-1]["seq"]) == []

    def test_campaigns_listing(self, queue):
        a = queue.submit("alpha", {}, _cells(1, "a"), now=1000.0)
        b = queue.submit("beta", {}, _cells(2, "b"), now=1001.0)
        listed = queue.campaigns()
        assert [c["id"] for c in listed] == [a, b]
        assert listed[1]["pending"] == 2

    def test_unknown_campaign(self, queue):
        assert queue.campaign("nope") is None
        assert not queue.is_done("nope")

    def test_events_isolated_per_campaign(self, queue):
        a = queue.submit("alpha", {}, _cells(1, "a"), now=1000.0)
        queue.submit("beta", {}, _cells(1, "b"), now=1001.0)
        assert all(e["kind"] == "submitted"
                   for e in queue.events_since(a, 0))
        assert len(queue.events_since(a, 0)) == 1
