"""The service wire protocol: spec serialization and cell decomposition.

A submitted study is a :class:`~repro.campaign.plan.CampaignSpec` in
JSON form (:func:`spec_to_dict` / :func:`spec_from_dict`), and the unit
of scheduling is a *cell*: one (configuration × workload × seed) grid
point resolved to its content-addressed run key.  Decomposition
(:func:`enumerate_cells`) reuses the exact key construction of
:func:`repro.campaign.plan.plan_campaign` -- the shared
:func:`~repro.campaign.plan.cell_request` template -- which is what
makes a served campaign's cache entries interchangeable with an
in-process campaign's: plan, serve, execute, and resume all agree on
what each grid point *is*.

Version 2 of the wire format added the ``fidelity`` tier
(:mod:`repro.core.request`); version 3 adds the ``sampling_mode``
(:mod:`repro.core.livesample`).  Older submissions are still accepted
on read and decode to the defaults (full fidelity, fixed sampling).
Mode strings are validated *at submit time* (:func:`validate_modes`)
so a typo fails the submission with one clear error instead of failing
N cells into quarantine worker by worker.

Only fixed-N specs are serializable for now: an adaptive stop rule
grows cells from results sequentially, which contradicts decomposing
the whole grid up front.  Submitting one raises :class:`ServiceError`
with that explanation rather than silently degrading.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.campaign.plan import CampaignSpec, cell_request
from repro.core.request import (
    FIDELITY_FULL,
    FIDELITY_TIERS,
    SAMPLING_FIXED,
    SAMPLING_MODES,
    WARMUP_MODES,
    WorkloadSpec,
)
from repro.store.serialize import (
    run_config_from_dict,
    run_config_to_dict,
    system_config_from_dict,
    system_config_to_dict,
)

#: bump on incompatible changes to the submission wire format
PROTOCOL_VERSION = 3

#: versions this service still decodes (v1: no fidelity field;
#: v2: no sampling_mode field)
ACCEPTED_VERSIONS = (1, 2, 3)


class ServiceError(ValueError):
    """A request the campaign service cannot honour (bad spec, unknown
    campaign, protocol mismatch); the message is safe to show a client."""


def validate_modes(
    warmup_mode: str, fidelity: str, sampling_mode: str = SAMPLING_FIXED
) -> None:
    """Reject unknown mode strings with a client-safe explanation.

    Called on both the submit and decode paths: a misspelled
    ``warmup_mode``/``fidelity``/``sampling_mode`` must bounce the
    submission immediately, not surface later as N per-cell worker
    failures marching the cells into quarantine.
    """
    if warmup_mode not in WARMUP_MODES:
        raise ServiceError(
            f"unknown warmup_mode {warmup_mode!r}: expected one of "
            f"{', '.join(WARMUP_MODES)}"
        )
    if fidelity not in FIDELITY_TIERS:
        raise ServiceError(
            f"unknown fidelity {fidelity!r}: expected one of "
            f"{', '.join(FIDELITY_TIERS)}"
        )
    if sampling_mode not in SAMPLING_MODES:
        raise ServiceError(
            f"unknown sampling_mode {sampling_mode!r}: expected one of "
            f"{', '.join(SAMPLING_MODES)}"
        )
    if sampling_mode == "live" and fidelity == "ffwd":
        raise ServiceError(
            "sampling_mode='live' places timed windows; the ffwd fidelity "
            "tier has none (use fidelity='simple' or 'ooo')"
        )


def spec_to_dict(spec: CampaignSpec) -> dict:
    """The JSON wire form of a fixed-N campaign spec."""
    if spec.stop_rule is not None:
        raise ServiceError(
            "adaptive campaigns cannot be submitted to the service yet: an "
            "adaptive cell grows from its own results, which contradicts "
            "decomposing the grid into independent cells up front; submit a "
            "fixed-N spec (n_runs) instead"
        )
    return {
        "version": PROTOCOL_VERSION,
        "name": spec.name,
        "configs": [
            [label, system_config_to_dict(config)] for label, config in spec.configs
        ],
        "workloads": [
            {
                "name": wspec.name,
                "seed": wspec.seed,
                "scale": wspec.scale,
                "params": wspec.params_dict,
            }
            for wspec in spec.workloads
        ],
        "run": run_config_to_dict(spec.run),
        "n_runs": spec.n_runs,
        "warm_start": spec.warm_start,
        "warmup_mode": spec.warmup_mode,
        "fidelity": spec.fidelity,
        "sampling_mode": spec.sampling_mode,
    }


def spec_from_dict(data: dict) -> CampaignSpec:
    """Rebuild a campaign spec from its wire form (inverse of
    :func:`spec_to_dict`).  Accepts every version in
    :data:`ACCEPTED_VERSIONS`; a v1 spec has no ``fidelity`` field and
    decodes to full fidelity."""
    try:
        version = data.get("version", PROTOCOL_VERSION)
        if version not in ACCEPTED_VERSIONS:
            raise ServiceError(
                f"unsupported submission version {version} "
                f"(this service speaks {PROTOCOL_VERSION} and still reads "
                f"{', '.join(str(v) for v in ACCEPTED_VERSIONS[:-1])})"
            )
        validate_modes(
            data.get("warmup_mode", "timed"),
            data.get("fidelity", FIDELITY_FULL),
            data.get("sampling_mode", SAMPLING_FIXED),
        )
        return CampaignSpec(
            configs=[
                (label, system_config_from_dict(config))
                for label, config in data["configs"]
            ],
            workloads=[
                WorkloadSpec(
                    name=w["name"],
                    seed=w["seed"],
                    scale=w["scale"],
                    params=tuple(sorted(dict(w.get("params") or {}).items())),
                )
                for w in data["workloads"]
            ],
            run=run_config_from_dict(data["run"]),
            n_runs=data["n_runs"],
            name=data.get("name", "campaign"),
            warm_start=data.get("warm_start", False),
            warmup_mode=data.get("warmup_mode", "timed"),
            fidelity=data.get("fidelity", FIDELITY_FULL),
            sampling_mode=data.get("sampling_mode", SAMPLING_FIXED),
        )
    except ServiceError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed campaign spec: {exc}") from exc


@dataclass(frozen=True)
class Cell:
    """One schedulable grid point of a submitted campaign.

    ``config_index``/``workload_index`` locate the cell's configuration
    and workload inside the campaign's own spec (labels and names may
    repeat; indices cannot), ``run_key`` is the content address its
    result will be stored under, and ``cached`` marks cells the store
    already satisfied at submission time.
    """

    config_index: int
    workload_index: int
    config_label: str
    workload: str
    seed: int
    run_key: str
    cached: bool = False


def enumerate_cells(spec: CampaignSpec, store=None) -> list[Cell]:
    """Decompose a fixed-N spec into cells, deduplicated against ``store``.

    Key construction matches :func:`repro.campaign.plan.plan_campaign`
    exactly (same :func:`~repro.campaign.plan.cell_request` template),
    so a cell executed by a remote worker lands on the very key an
    in-process campaign would read it back from.  With a store, every key is
    resolved in one batched :meth:`~repro.store.RunStore.get_many`-style
    backend pass and already-satisfied cells come back ``cached=True``
    -- the submit-side dedup that keeps N tenants from ever re-running
    one another's grid points.
    """
    if spec.stop_rule is not None:
        raise ServiceError("adaptive specs cannot be decomposed into cells")
    cells: list[Cell] = []
    for ci, (label, config) in enumerate(spec.configs):
        for wi, wspec in enumerate(spec.workloads):
            template = cell_request(spec, config, wspec)
            for i in range(spec.n_runs):
                seed = spec.run.seed + i
                key = template.with_seed(seed).run_key
                cells.append(
                    Cell(
                        config_index=ci,
                        workload_index=wi,
                        config_label=label,
                        workload=wspec.name,
                        seed=seed,
                        run_key=key,
                    )
                )
    if store is not None:
        present = store.backend.contains_many([c.run_key for c in cells])
        cells = [replace(cell, cached=cell.run_key in present) for cell in cells]
    return cells
