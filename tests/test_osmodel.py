"""Tests for the OS model: scheduler, locks, barriers."""

import pytest

from repro.config import OSConfig
from repro.osmodel.locks import Barrier, LockTable, Mutex
from repro.osmodel.scheduler import Scheduler
from repro.osmodel.thread import SimThread, ThreadState
from repro.proc.base import BranchContext


class FakeProgram:
    """Minimal program stub for scheduler tests."""

    def next_ops(self, thread):
        return [("cpu", 10, 0)]

    def snapshot(self):
        return {}

    def restore_state(self, state):
        pass


def thread(tid, cpu=0) -> SimThread:
    return SimThread(
        tid=tid,
        name=f"t{tid}",
        program=FakeProgram(),
        branch_ctx=BranchContext(code_seed=1),
        last_cpu=cpu,
    )


def scheduler(n_cpus=2, **os_kwargs) -> Scheduler:
    return Scheduler(OSConfig(**os_kwargs), n_cpus)


class TestScheduler:
    def test_add_and_dispatch(self):
        sched = scheduler()
        sched.add_thread(thread(0))
        picked = sched.pick_next(0, now=0)
        assert picked.tid == 0
        assert picked.state is ThreadState.RUNNING
        assert sched.current[0] == 0

    def test_duplicate_tid_rejected(self):
        sched = scheduler()
        sched.add_thread(thread(0))
        with pytest.raises(ValueError):
            sched.add_thread(thread(0))

    def test_fifo_order(self):
        sched = scheduler()
        for tid in range(3):
            sched.add_thread(thread(tid, cpu=0))
        assert sched.pick_next(0, 0).tid == 0
        sched.block(0, sched.threads[0], ThreadState.BLOCKED_IO)
        assert sched.pick_next(0, 0).tid == 1

    def test_pick_from_empty_returns_none(self):
        assert scheduler().pick_next(0, 0) is None

    def test_quantum_deadline_set(self):
        sched = scheduler(quantum_ns=1000)
        sched.add_thread(thread(0))
        picked = sched.pick_next(0, now=500)
        assert picked.quantum_deadline == 1500

    def test_steal_from_loaded_queue(self):
        sched = scheduler(n_cpus=2)
        for tid in range(3):
            sched.add_thread(thread(tid, cpu=0))
        picked = sched.pick_next(1, 0)  # cpu 1 queue empty: steal
        assert picked is not None
        assert sched.migrations == 1
        assert picked.last_cpu == 1

    def test_no_steal_when_disabled(self):
        sched = scheduler(n_cpus=2, load_balance=False)
        sched.add_thread(thread(0, cpu=0))
        assert sched.pick_next(1, 0) is None

    def test_make_ready_prefers_home(self):
        sched = scheduler(n_cpus=2)
        t = thread(0, cpu=1)
        sched.add_thread(t)
        sched.pick_next(1, 0)
        sched.block(1, t, ThreadState.BLOCKED_IO)
        target = sched.make_ready(t)
        assert target == 1

    def test_make_ready_balances_to_idle_cpu(self):
        sched = scheduler(n_cpus=2)
        busy = thread(0, cpu=0)
        sleeper = thread(1, cpu=0)
        sched.add_thread(busy)
        sched.add_thread(sleeper)
        sched.pick_next(0, 0)  # busy runs on cpu 0
        t = sched.threads[1]
        sched.run_queues[0].remove(1)
        t.state = ThreadState.BLOCKED_IO
        target = sched.make_ready(t)
        assert target == 1  # cpu 1 idle and empty

    def test_preempt_requeues_at_tail(self):
        sched = scheduler()
        for tid in range(2):
            sched.add_thread(thread(tid, cpu=0))
        t0 = sched.pick_next(0, 0)
        sched.preempt(0, t0)
        assert sched.run_queues[0] == [1, 0]
        assert t0.state is ThreadState.READY

    def test_preempt_wrong_thread_rejected(self):
        sched = scheduler()
        sched.add_thread(thread(0))
        sched.add_thread(thread(1))
        sched.pick_next(0, 0)
        with pytest.raises(ValueError):
            sched.preempt(0, sched.threads[1])

    def test_block_frees_cpu(self):
        sched = scheduler()
        sched.add_thread(thread(0))
        t = sched.pick_next(0, 0)
        sched.block(0, t, ThreadState.BLOCKED_LOCK)
        assert sched.current[0] is None
        assert t.state is ThreadState.BLOCKED_LOCK

    def test_trace_records_dispatches(self):
        sched = scheduler()
        sched.trace_enabled = True
        sched.add_thread(thread(0))
        sched.pick_next(0, now=42)
        assert len(sched.trace) == 1
        assert sched.trace[0].time_ns == 42
        assert sched.trace[0].tid == 0

    def test_trace_disabled_by_default(self):
        sched = scheduler()
        sched.add_thread(thread(0))
        sched.pick_next(0, 0)
        assert sched.trace == []

    def test_snapshot_roundtrip(self):
        sched = scheduler()
        for tid in range(3):
            sched.add_thread(thread(tid, cpu=tid % 2))
        sched.pick_next(0, 0)
        state = sched.snapshot()
        fresh = scheduler()
        for tid in range(3):
            fresh.threads[tid] = thread(tid)
        fresh.restore_state(state)
        assert fresh.run_queues == sched.run_queues
        assert fresh.current == sched.current


class TestMutex:
    def test_acquire_free(self):
        m = Mutex(lock_id=1, address=64)
        assert m.try_acquire(10) is True
        assert m.holder == 10

    def test_acquire_held_fails(self):
        m = Mutex(lock_id=1, address=64)
        m.try_acquire(10)
        assert m.try_acquire(11) is False

    def test_release_frees_without_handoff(self):
        """Barging semantics: release leaves the lock free."""
        m = Mutex(lock_id=1, address=64)
        m.try_acquire(10)
        m.enqueue_waiter(11)
        woken = m.release(10)
        assert woken == 11
        assert m.holder is None  # not handed off; the waiter must race

    def test_barging_thread_can_steal(self):
        m = Mutex(lock_id=1, address=64)
        m.try_acquire(10)
        m.enqueue_waiter(11)
        m.release(10)
        assert m.try_acquire(12) is True  # barger wins
        # Loser re-queues.
        m.enqueue_waiter(11)
        assert m.waiters == [11]

    def test_release_by_non_holder_rejected(self):
        m = Mutex(lock_id=1, address=64)
        m.try_acquire(10)
        with pytest.raises(ValueError):
            m.release(11)

    def test_waiter_fifo(self):
        m = Mutex(lock_id=1, address=64)
        m.try_acquire(10)
        m.enqueue_waiter(11)
        m.enqueue_waiter(12)
        assert m.release(10) == 11

    def test_double_enqueue_rejected(self):
        m = Mutex(lock_id=1, address=64)
        m.try_acquire(10)
        m.enqueue_waiter(11)
        with pytest.raises(ValueError):
            m.enqueue_waiter(11)

    def test_contention_rate(self):
        m = Mutex(lock_id=1, address=64)
        m.try_acquire(10)
        m.enqueue_waiter(11)
        assert m.contention_rate == 1.0


class TestBarrier:
    def test_releases_when_full(self):
        b = Barrier(barrier_id=1, participants=3)
        assert b.arrive(0) is None
        assert b.arrive(1) is None
        assert b.arrive(2) == [0, 1, 2]
        assert b.generation == 1

    def test_reusable_across_generations(self):
        b = Barrier(barrier_id=1, participants=2)
        b.arrive(0)
        b.arrive(1)
        assert b.arrive(0) is None
        assert b.arrive(1) == [0, 1]
        assert b.generation == 2

    def test_double_arrival_rejected(self):
        b = Barrier(barrier_id=1, participants=3)
        b.arrive(0)
        with pytest.raises(ValueError):
            b.arrive(0)


class TestLockTable:
    def test_mutex_created_once(self):
        table = LockTable()
        assert table.mutex(5) is table.mutex(5)

    def test_lock_words_in_distinct_blocks(self):
        table = LockTable()
        a = table.mutex(0).address
        b = table.mutex(1).address
        assert a // 64 != b // 64

    def test_barrier_participant_mismatch_rejected(self):
        table = LockTable()
        table.barrier(1, 4)
        with pytest.raises(ValueError):
            table.barrier(1, 5)

    def test_snapshot_roundtrip(self):
        table = LockTable()
        m = table.mutex(3)
        m.try_acquire(7)
        m.enqueue_waiter(8)
        table.barrier(1, 4).arrive(2)
        fresh = LockTable()
        fresh.restore_state(table.snapshot())
        assert fresh.mutex(3).holder == 7
        assert fresh.mutex(3).waiters == [8]
        assert fresh.barrier(1, 4).arrived == [2]
