"""End-to-end determinism properties across the full stack.

The methodology is only sound if the simulator is a pure function of
(configuration, seed): these tests verify that at the level of complete
schedules and transaction streams, not just final metrics, and across
every workload and protocol.
"""

import hashlib

import pytest

from repro.config import RunConfig, SystemConfig
from repro.system.simulation import run_simulation
from repro.workloads.registry import make_workload

CONFIG = SystemConfig(n_cpus=4)


def fingerprint(name: str, seed: int, *, config=CONFIG, txns=25, **params) -> str:
    """Hash of the run's complete observable behaviour."""
    workload = make_workload(name, **params)
    result = run_simulation(
        config,
        workload,
        RunConfig(measured_transactions=txns, seed=seed, max_time_ns=10**13),
        collect_transaction_times=True,
        collect_schedule_trace=True,
    )
    blob = repr(
        (
            result.cycles_per_transaction,
            result.elapsed_ns,
            result.transaction_times,
            [(e.time_ns, e.cpu, e.tid) for e in result.schedule_trace],
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class TestFullStackDeterminism:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("oltp", {"threads_per_cpu": 2}),
            ("apache", {"threads_per_cpu": 2}),
            ("specjbb", {}),
            ("slashcode", {"threads_per_cpu": 2}),
        ],
    )
    def test_schedule_level_replay(self, name, params):
        assert fingerprint(name, 9, **params) == fingerprint(name, 9, **params)

    def test_seed_changes_schedule(self):
        assert fingerprint("oltp", 1, threads_per_cpu=2, txns=60) != fingerprint(
            "oltp", 2, threads_per_cpu=2, txns=60
        )

    @pytest.mark.parametrize("protocol", ["mosi", "mesi", "moesi"])
    def test_replay_per_protocol(self, protocol):
        config = SystemConfig(n_cpus=4).with_protocol(protocol)
        assert fingerprint("oltp", 5, config=config, threads_per_cpu=2) == fingerprint(
            "oltp", 5, config=config, threads_per_cpu=2
        )

    def test_scientific_replay(self):
        config = SystemConfig(n_cpus=4)
        a = fingerprint("barnes", 3, config=config, txns=1)
        b = fingerprint("barnes", 3, config=config, txns=1)
        assert a == b

    def test_ooo_model_replay(self):
        config = SystemConfig(n_cpus=4).with_rob_entries(32)
        assert fingerprint("oltp", 7, config=config, threads_per_cpu=2) == fingerprint(
            "oltp", 7, config=config, threads_per_cpu=2
        )

    def test_zero_perturbation_schedule_identical_across_seeds(self):
        config = SystemConfig(n_cpus=4).with_perturbation(0)
        assert fingerprint("oltp", 1, config=config, threads_per_cpu=2) == fingerprint(
            "oltp", 2, config=config, threads_per_cpu=2
        )
