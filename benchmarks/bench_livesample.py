"""Live-sampling benchmark: precision per timed transaction, and the
fixed-vs-live conclusion gate.

Two legs:

1. **Precision ladder** -- a two-phase scripted workload (compute-bound
   half, lock-serialized half) measured two ways: live sampling
   (:func:`repro.core.livesample.live_window_sample` -- survey, detect,
   stratify, Neyman-allocate) against the fixed SMARTS cadence
   (:func:`repro.core.sampling.multi_window_sample`) at every window
   count that spans the same region.  Records the timed transactions
   each needs to reach the live run's CI half-width -- the
   "measurably fewer timed window-cycles" number.
2. **Conclusion grid** -- a small DRAM-latency sweep executed twice
   from cold stores, ``sampling_mode="fixed"`` and ``"live"``, through
   the ordinary campaign machinery.  Every cell's conclusion vs the
   baseline config (CI separation, as in the fidelity ladder) must
   match between modes, with live spending a bounded fraction of the
   fixed mode's timed-transaction budget.

Writes ``BENCH_livesample.json`` at the repo root.  Usage::

    PYTHONPATH=src python benchmarks/bench_livesample.py
    PYTHONPATH=src python benchmarks/bench_livesample.py --smoke

``--smoke`` (the CI gate) runs the small grid and asserts live mode
reproduces every fixed-mode conclusion with at most 60 % of the fixed
mode's timed window budget; it still records the run in the JSON.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.campaign.campaign import Campaign
from repro.campaign.plan import CampaignSpec
from repro.config import RunConfig, SystemConfig
from repro.core.fidelity import _conclude
from repro.core.livesample import live_window_sample
from repro.core.request import WorkloadSpec
from repro.core.sampling import multi_window_sample
from repro.store import RunStore
from repro.system.machine import Machine
from repro.workloads.base import Op, Workload, WorkloadClock, WorkloadProgram

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_livesample.json"

#: script addresses: unshared code, per-thread private data, shared lines
CODE = 0x0800_0000
PRIVATE = 0x2000_0000
SHARED = 0x1000_0000


class TwoPhaseProgram(WorkloadProgram):
    """Compute-bound until ``switch_at`` lifetime transactions, then
    lock-serialized shared writes -- one sharp, detectable phase change."""

    global_queue = False

    def __init__(self, name, tid, seed, clock, switch_at, repeats):
        super().__init__(name, tid, seed, clock)
        self.switch_at = switch_at
        self.repeats = repeats

    def build_transaction(self) -> list[Op]:
        if self.txn_index >= self.repeats:
            self.finished = True
            return [("txn_end", 0)]
        if self.clock.total_transactions < self.switch_at:
            return [
                ("cpu", 400, CODE),
                ("mem", PRIVATE + self.tid * 0x10000, 0),
                ("cpu", 200, CODE),
                ("txn_end", 0),
            ]
        return [
            ("lock", 7),
            ("mem", SHARED, 1),
            ("mem", SHARED + 64, 1),
            ("unlock", 7),
            ("io", 3000),
            ("txn_end", 1),
        ]


class TwoPhaseWorkload(Workload):
    name = "twophase"

    def __init__(self, switch_at, repeats=6000, threads=2, seed=1):
        super().__init__(seed=seed)
        self.switch_at = switch_at
        self.repeats = repeats
        self.threads = threads

    def n_threads(self, n_cpus: int) -> int:
        return self.threads

    def make_program(self, tid: int, clock: WorkloadClock) -> TwoPhaseProgram:
        return TwoPhaseProgram(
            self.name, tid, self.seed, clock, self.switch_at, self.repeats
        )


def precision_ladder(*, smoke: bool) -> dict:
    """Timed transactions each strategy needs for the live half-width."""
    n_intervals = 12 if smoke else 24
    interval_txns = 20 if smoke else 40
    warmup = 40
    config = SystemConfig(n_cpus=2)
    run = RunConfig(
        measured_transactions=interval_txns,
        warmup_transactions=warmup,
        seed=5,
    )
    switch_at = warmup + (n_intervals // 2) * interval_txns

    def factory():
        return Machine(config, TwoPhaseWorkload(switch_at=switch_at))

    t0 = time.perf_counter()
    live = live_window_sample(
        config,
        None,
        run,
        n_intervals=n_intervals,
        interval_transactions=interval_txns,
        budget_windows=n_intervals // 2,
        target_fraction=0.05,
        machine_factory=factory,
    )
    live_s = time.perf_counter() - t0
    live_half = live.interval().half_width

    # The fixed cadence at every window count spanning the same region:
    # k windows of the same length, evenly spaced skips.
    region = n_intervals * interval_txns
    cadence = []
    fixed_needed = None
    for k in range(2, n_intervals + 1):
        skip = ((region - k * interval_txns) // (k - 1)) if k > 1 else 0
        sample = multi_window_sample(
            config,
            TwoPhaseWorkload(switch_at=switch_at),
            run,
            n_windows=k,
            skip_transactions=skip,
        )
        timed = sum(w.transactions for w in sample.windows)
        half = sample.interval().half_width if sample.n_valid >= 2 else None
        cadence.append({"windows": k, "timed_transactions": timed, "half_width": half})
        if fixed_needed is None and half is not None and half <= live_half:
            fixed_needed = {"windows": k, "timed_transactions": timed, "half_width": half}

    return {
        "n_intervals": n_intervals,
        "interval_transactions": interval_txns,
        "live": {
            "timed_windows": live.n_timed_windows,
            "timed_transactions": live.timed_transactions,
            "half_width": live_half,
            "point_estimate": live.point_estimate,
            "change_points": live.change_points,
            "n_strata": len(live.strata),
            "seconds": round(live_s, 3),
        },
        "fixed_cadence": cadence,
        "fixed_needed_for_live_half_width": fixed_needed,
    }


def grid_spec(*, smoke: bool) -> CampaignSpec:
    base = SystemConfig(n_cpus=2)
    latencies = (240, 400) if smoke else (160, 240, 320, 400)
    return CampaignSpec(
        configs=[("base", base)]
        + [(f"dram={d}", base.with_dram_latency(d)) for d in latencies],
        workloads=[
            WorkloadSpec.resolve("oltp", workload_params={"threads_per_cpu": 2})
        ],
        run=RunConfig(
            measured_transactions=64 if smoke else 128,
            warmup_transactions=30,
            seed=21,
        ),
        n_runs=4 if smoke else 8,
        name="bench-livesample",
    )


def conclusion_grid(spec: CampaignSpec, workdir: Path, progress=None) -> dict:
    """The sweep both ways from cold stores; per-cell conclusions and
    the timed-transaction budgets actually spent."""
    reports = {}
    timed = {}
    seconds = {}
    for mode in ("fixed", "live"):
        t0 = time.perf_counter()
        store = RunStore(workdir / mode)
        report = Campaign(
            replace(spec, sampling_mode=mode, name=f"{spec.name}-{mode}"), store
        ).run(progress)
        seconds[mode] = time.perf_counter() - t0
        reports[mode] = report
        timed[mode] = sum(
            result.measured_transactions
            for cell in report.cells
            for result in cell.sample.results
        )

    baseline = spec.configs[0][0]
    wname = spec.workloads[0].name
    cells = []
    matched = 0
    for label, _config in spec.configs:
        conclusions = {}
        for mode in ("fixed", "live"):
            values = reports[mode].sample(label, wname).values
            base_values = reports[mode].sample(baseline, wname).values
            conclusions[mode] = (
                "tie" if label == baseline else _conclude(values, base_values, 0.95)
            )
        matched += conclusions["fixed"] == conclusions["live"]
        cells.append({"config": label, **conclusions})

    return {
        "conclusions_matched": matched,
        "conclusions_total": len(cells),
        "cells": cells,
        "timed_transactions": timed,
        "live_budget_fraction": (
            round(timed["live"] / timed["fixed"], 4) if timed["fixed"] else None
        ),
        "fixed_seconds": round(seconds["fixed"], 3),
        "live_seconds": round(seconds["live"], 3),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid, assert the CI gate, still record the JSON",
    )
    args = parser.parse_args()

    print("precision ladder (two-phase workload, live vs fixed cadence) ...")
    ladder = precision_ladder(smoke=args.smoke)
    live = ladder["live"]
    needed = ladder["fixed_needed_for_live_half_width"]
    print(
        f"  live: {live['timed_windows']} windows, "
        f"{live['timed_transactions']} timed txns, "
        f"half-width {live['half_width']:.1f} "
        f"(strata={live['n_strata']}, change points {live['change_points']})"
    )
    if needed is None:
        print(
            "  fixed cadence never reached the live half-width "
            f"(max {ladder['n_intervals']} windows = "
            f"{ladder['fixed_cadence'][-1]['timed_transactions']} timed txns)"
        )
    else:
        print(
            f"  fixed cadence needs {needed['windows']} windows = "
            f"{needed['timed_transactions']} timed txns for the same half-width"
        )

    spec = grid_spec(smoke=args.smoke)
    print(
        f"\nconclusion grid ({len(spec.configs)} configs, "
        f"{spec.n_runs} runs/cell, fixed vs live) ..."
    )
    with tempfile.TemporaryDirectory() as td:
        grid = conclusion_grid(spec, Path(td), progress=print)
    print(
        f"  conclusions: {grid['conclusions_matched']}/{grid['conclusions_total']} "
        f"match; live timed budget "
        f"{100 * grid['live_budget_fraction']:.0f}% of fixed "
        f"({grid['timed_transactions']['live']}/{grid['timed_transactions']['fixed']} txns)"
    )

    payload = {"smoke": args.smoke, "precision_ladder": ladder, "grid": grid}
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")

    if args.smoke:
        assert grid["conclusions_matched"] == grid["conclusions_total"], (
            f"live sampling changed a conclusion vs fixed mode: {grid['cells']}"
        )
        assert grid["live_budget_fraction"] <= 0.6, (
            f"live mode spent {100 * grid['live_budget_fraction']:.0f}% of the "
            "fixed timed budget (gate: at most 60%)"
        )
        fixed_timed = (
            needed["timed_transactions"]
            if needed is not None
            else ladder["fixed_cadence"][-1]["timed_transactions"]
        )
        assert live["timed_transactions"] < fixed_timed, (
            "live sampling did not save timed transactions over the fixed "
            f"cadence ({live['timed_transactions']} vs {fixed_timed})"
        )
        print(
            "smoke gate passed: same conclusions, "
            f"{100 * grid['live_budget_fraction']:.0f}% timed budget, "
            f"{live['timed_transactions']} vs {fixed_timed} txns for the "
            "precision target"
        )


if __name__ == "__main__":
    main()
