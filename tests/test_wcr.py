"""Tests for the Wrong Conclusion Ratio (paper section 4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.wcr import wrong_conclusion_ratio

FLOATS = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)


class TestWCR:
    def test_fully_separated_samples_zero(self):
        assert wrong_conclusion_ratio([1.0, 2.0], [10.0, 11.0]) == 0.0

    def test_fully_reversed_pairs(self):
        # A's mean is lower (A superior), but one A value exceeds one B.
        a = [1.0, 9.0]
        b = [5.0, 6.0]
        # Pairs: (1,5) ok, (1,6) ok, (9,5) wrong, (9,6) wrong -> 2/4.
        assert wrong_conclusion_ratio(a, b) == 50.0

    def test_single_wrong_pair(self):
        a = [1.0, 1.0, 4.0]
        b = [3.0, 5.0, 5.0]
        # mean(a)=2 < mean(b)=4.33: wrong pairs where a > b: (4,3) only.
        assert wrong_conclusion_ratio(a, b) == pytest.approx(100.0 / 9.0)

    def test_ties_count_half(self):
        a = [1.0, 3.0]
        b = [3.0, 5.0]
        # Pairs: (1,3) ok, (1,5) ok, (3,3) tie=0.5, (3,5) ok.
        assert wrong_conclusion_ratio(a, b) == pytest.approx(100.0 * 0.5 / 4)

    def test_higher_is_better_orientation(self):
        a = [10.0, 11.0]
        b = [1.0, 12.0]
        low = wrong_conclusion_ratio(a, b, lower_is_better=True)
        high = wrong_conclusion_ratio(a, b, lower_is_better=False)
        assert low + high == pytest.approx(100.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            wrong_conclusion_ratio([], [1.0])

    def test_equal_means_rejected(self):
        with pytest.raises(ValueError):
            wrong_conclusion_ratio([1.0, 3.0], [2.0, 2.0])

    @given(st.lists(FLOATS, min_size=2, max_size=15), st.lists(FLOATS, min_size=2, max_size=15))
    def test_property_bounded(self, a, b):
        from repro.core.metrics import mean

        if mean(a) == mean(b):
            return
        wcr = wrong_conclusion_ratio(a, b)
        assert 0.0 <= wcr <= 100.0

    @given(st.lists(FLOATS, min_size=2, max_size=12), st.lists(FLOATS, min_size=2, max_size=12))
    def test_property_symmetric(self, a, b):
        """Swapping the samples cannot change the WCR: the set of wrongly
        ordered pairs is the same."""
        from repro.core.metrics import mean

        if mean(a) == mean(b):
            return
        assert wrong_conclusion_ratio(a, b) == pytest.approx(
            wrong_conclusion_ratio(b, a)
        )

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=3, max_size=12, unique=True))
    def test_property_self_comparison_large(self, ints):
        """Comparing a sample against a barely shifted copy of itself
        gives a large WCR (the configurations are 'close'): every pair
        (v_i, v_j + eps) with v_i > v_j orders against the means."""
        values = [float(v) for v in ints]
        shifted = [v + 0.25 for v in values]
        wcr = wrong_conclusion_ratio(values, shifted)
        n = len(values)
        # Wrong pairs are exactly the n(n-1)/2 strictly descending pairs.
        assert wcr == pytest.approx(100.0 * (n - 1) / (2 * n))
