"""Tests for the assembled memory hierarchy (timing + coherence)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import SRC_CACHE, SRC_L1, SRC_L2, SRC_MEMORY, SRC_UPGRADE
from repro.config import SystemConfig
from repro.memory.coherence import MOSIState
from repro.memory.hierarchy import L1_READ_ONLY, L1_READ_WRITE, MemoryHierarchy


def hierarchy(n_cpus=4, perturbation=0) -> MemoryHierarchy:
    config = SystemConfig(n_cpus=n_cpus).with_perturbation(perturbation)
    return MemoryHierarchy(config)


ADDR = 0x4000_0000  # shared region


class TestBasicLatencies:
    def test_cold_load_comes_from_memory(self):
        h = hierarchy()
        result = h.access(0, ADDR, False, 0)
        assert result[1] == SRC_MEMORY
        # 1 (L1) + 20 (L2) + 100 (crossbar round trip) + 80 (DRAM) = 201.
        assert result[0] == 201

    def test_l1_hit_after_fill(self):
        h = hierarchy()
        h.access(0, ADDR, False, 0)
        result = h.access(0, ADDR, False, 10)
        assert result[1] == SRC_L1
        assert result[0] == 1

    def test_l2_hit_after_l1_eviction(self):
        h = hierarchy()
        h.access(0, ADDR, False, 0)
        # Evict the block from L1 by filling its set (L1: 32 sets, 4 ways).
        sets = h.l1d[0].n_sets
        for i in range(1, 5):
            h.access(0, ADDR + i * sets * 64, False, 0)
        result = h.access(0, ADDR, False, 10)
        assert result[1] == SRC_L2

    def test_cache_to_cache_transfer(self):
        h = hierarchy()
        h.access(0, ADDR, True, 0)  # node 0 takes M
        result = h.access(1, ADDR, False, 1000)
        assert result[1] == SRC_CACHE
        # 1 + 20 + 100 (crossbar) + 25 (provider) = 146.
        assert result[0] == 146

    def test_upgrade_latency(self):
        h = hierarchy()
        h.access(0, ADDR, False, 0)  # S
        result = h.access(0, ADDR, True, 1000)
        assert result[1] == SRC_UPGRADE
        assert h.stats.upgrades == 1


class TestCoherenceBehaviour:
    def test_m_demotes_to_o_on_remote_read(self):
        h = hierarchy()
        h.access(0, ADDR, True, 0)
        h.access(1, ADDR, False, 1000)
        assert h.l2[0].peek(ADDR // 64).state == MOSIState.O.value
        assert h.l2[1].peek(ADDR // 64).state == MOSIState.S.value

    def test_remote_write_invalidates_sharers(self):
        h = hierarchy()
        h.access(0, ADDR, False, 0)
        h.access(1, ADDR, False, 100)
        h.access(2, ADDR, True, 2000)
        assert h.l2[0].peek(ADDR // 64) is None
        assert h.l2[1].peek(ADDR // 64) is None
        assert h.l2[2].peek(ADDR // 64).state == MOSIState.M.value

    def test_write_invalidation_reaches_l1(self):
        h = hierarchy()
        h.access(0, ADDR, False, 0)
        assert h.l1d[0].peek(ADDR // 64) is not None
        h.access(1, ADDR, True, 1000)
        assert h.l1d[0].peek(ADDR // 64) is None

    def test_l1_demoted_when_owner_loses_exclusivity(self):
        h = hierarchy()
        h.access(0, ADDR, True, 0)
        assert h.l1d[0].peek(ADDR // 64).state == L1_READ_WRITE
        h.access(1, ADDR, False, 1000)
        assert h.l1d[0].peek(ADDR // 64).state == L1_READ_ONLY

    def test_write_to_read_only_l1_goes_coherent(self):
        h = hierarchy()
        h.access(0, ADDR, False, 0)
        h.access(1, ADDR, False, 100)  # two sharers
        result = h.access(0, ADDR, True, 2000)
        assert result[1] == SRC_UPGRADE
        assert h.l2[1].peek(ADDR // 64) is None

    def test_second_write_is_l1_hit(self):
        h = hierarchy()
        h.access(0, ADDR, True, 0)
        result = h.access(0, ADDR, True, 10)
        assert result[1] == SRC_L1

    def test_dirty_eviction_writes_back(self):
        h = hierarchy(n_cpus=1)
        sets = h.l2[0].n_sets
        h.access(0, ADDR, True, 0)
        for i in range(1, 5):
            h.access(0, ADDR + i * sets * 64, False, i * 1000)
        assert h.stats.writebacks == 1
        assert h.dram.stats.writebacks == 1

    def test_instruction_fetch_uses_l1i(self):
        h = hierarchy()
        h.access(0, ADDR, False, 0, is_instruction=True)
        assert h.l1i[0].peek(ADDR // 64) is not None
        assert h.l1d[0].peek(ADDR // 64) is None


class TestInvariants:
    def test_invariants_after_clean_sequence(self):
        h = hierarchy()
        h.access(0, ADDR, False, 0)
        h.access(1, ADDR, False, 100)
        h.access(2, ADDR, True, 1000)
        h.access(3, ADDR, False, 2000)
        assert h.check_coherence_invariants() == []

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # node
                st.integers(min_value=0, max_value=40),  # block choice
                st.booleans(),                            # write
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_property_invariants_hold_under_random_traffic(self, ops):
        h = hierarchy()
        now = 0
        for node, block_choice, write in ops:
            now += 13
            h.access(node, ADDR + block_choice * 64, write, now)
        assert h.check_coherence_invariants() == []

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=600),
                st.booleans(),
            ),
            min_size=1,
            max_size=150,
        )
    )
    def test_property_invariants_hold_under_eviction_pressure(self, ops):
        """Same-set traffic forces evictions; invariants must survive."""
        h = hierarchy()
        sets = h.l2[0].n_sets
        now = 0
        for node, stride, write in ops:
            now += 13
            # All blocks in one L2 set: maximum conflict pressure.
            h.access(node, ADDR + stride * sets * 64, write, now)
        assert h.check_coherence_invariants() == []


class TestPerturbation:
    def test_zero_perturbation_adds_nothing(self):
        h = hierarchy(perturbation=0)
        h.access(0, ADDR, False, 0)
        assert h.stats.perturbation_total_ns == 0

    def test_perturbation_accumulates_on_misses(self):
        h = hierarchy(perturbation=4)
        h.seed_perturbation(3)
        for i in range(200):
            h.access(0, ADDR + i * 64, False, i * 10)
        total = h.stats.perturbation_total_ns
        assert 0 < total <= 4 * 200
        # Uniform 0..4: expect about 2 per miss.
        assert 200 <= total <= 600

    def test_same_seed_same_jitter(self):
        results = []
        for _ in range(2):
            h = hierarchy(perturbation=4)
            h.seed_perturbation(42)
            latencies = [h.access(0, ADDR + i * 64, False, i * 10)[0] for i in range(50)]
            results.append(latencies)
        assert results[0] == results[1]

    def test_different_seeds_different_jitter(self):
        latencies = []
        for seed in (1, 2):
            h = hierarchy(perturbation=4)
            h.seed_perturbation(seed)
            latencies.append(
                [h.access(0, ADDR + i * 64, False, i * 10)[0] for i in range(50)]
            )
        assert latencies[0] != latencies[1]


class TestBlockRaces:
    def test_racing_requests_serialize(self):
        h = hierarchy()
        h.access(0, ADDR, True, 0)
        h.access(1, ADDR, True, 1)  # within the first transaction's window
        assert h.stats.block_race_stalls >= 1

    def test_spaced_requests_do_not_stall(self):
        h = hierarchy()
        h.access(0, ADDR, True, 0)
        h.access(1, ADDR, True, 50_000)
        assert h.stats.block_race_stalls == 0


class TestSnapshotRestore:
    def test_roundtrip_preserves_behaviour(self):
        h = hierarchy()
        h.seed_perturbation(5)
        for i in range(60):
            h.access(i % 4, ADDR + (i % 20) * 64, i % 3 == 0, i * 17)
        state = h.snapshot()
        follow_on = [(2, ADDR + 5 * 64, True), (3, ADDR + 21 * 64, False)]
        expected = [h.access(n, a, w, 10_000 + i) [0] for i, (n, a, w) in enumerate(follow_on)]
        h2 = hierarchy()
        h2.restore_state(state)
        actual = [h2.access(n, a, w, 10_000 + i)[0] for i, (n, a, w) in enumerate(follow_on)]
        assert actual == expected
        assert h2.check_coherence_invariants() == []
