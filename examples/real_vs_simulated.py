"""Real machine vs deterministic simulator: where variability comes from.

Run:  python examples/real_vs_simulated.py

The paper's framing (section 2): variability is obvious on real machines
-- every run differs -- but simulators are deterministic, silently hiding
it.  This example measures both sides:

1. the emulated Sun E5000 running OLTP: five runs differ with *no*
   injected randomness, and short observation intervals swing wildly;
2. the simulator without perturbation: seeds change nothing;
3. the simulator with the paper's 0-4 ns perturbation: the hidden space
   of executions opens up, with variability of the same character as the
   real machine's.
"""

from repro import (
    RunConfig,
    SunE5000,
    SystemConfig,
    run_space,
    summarize,
)


def main() -> None:
    # -- 1. the real machine ---------------------------------------------
    print("Sun E5000 (emulated), five 10-minute OLTP runs:")
    machine = SunE5000()
    run_totals = []
    for seed in range(1, 6):
        measurement = machine.run(duration_s=600, users=96, seed=seed)
        cycles_per_txn = (
            measurement.n_cpus * measurement.clock_hz * measurement.duration_s
            / measurement.total_transactions
        )
        run_totals.append(cycles_per_txn)
        one_second = measurement.cycles_per_transaction(1)
        print(
            f"  run {seed}: {measurement.total_transactions / 600:5.0f} txn/s, "
            f"whole-run {cycles_per_txn / 1e6:.2f}M cycles/txn, "
            f"1s-interval swing {max(one_second) / min(one_second):.1f}x"
        )
    print(f"  across runs: {summarize(run_totals)}")

    # -- 2. the deterministic simulator ----------------------------------
    config = SystemConfig()
    run = RunConfig(measured_transactions=200, warmup_transactions=400)
    frozen = run_space(config.with_perturbation(0), "oltp", run, n_runs=3)
    print("\nsimulator, perturbation disabled, three seeds:")
    for r in frozen.results:
        print(f"  seed {r.seed}: {r.cycles_per_transaction:,.2f} cycles/txn")
    print("  identical -- a deterministic simulator hides variability entirely.")

    # -- 3. the simulator with the paper's perturbation -------------------
    perturbed = run_space(config, "oltp", run, n_runs=6)
    print("\nsimulator, 0-4 ns perturbation on L2 misses, six seeds:")
    for r in perturbed.results:
        print(f"  seed {r.seed}: {r.cycles_per_transaction:,.0f} cycles/txn")
    print(f"  {perturbed.summary()}")
    print(
        "\nthe perturbation does not change average latency across runs; it "
        "only exposes the execution paths a real machine would explore."
    )


if __name__ == "__main__":
    main()
