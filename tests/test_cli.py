"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_workloads_command(self):
        args = build_parser().parse_args(["workloads"])
        assert args.command == "workloads"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "oltp"
        assert args.txns == 200
        assert args.perturbation == 4

    def test_compare_requires_vary(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--a", "2", "--b", "4"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nosuch"])

    def test_vary_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--vary", "nonsense", "--a", "1", "--b", "2"]
            )

    def test_run_accepts_jobs(self):
        args = build_parser().parse_args(["run", "--jobs", "4"])
        assert args.jobs == 4

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.command == "campaign"
        assert args.runs == 10
        assert not args.adaptive
        assert not args.dry_run

    def test_sampling_mode_flag(self):
        assert build_parser().parse_args(["space"]).sampling_mode == "fixed"
        args = build_parser().parse_args(["space", "--sampling-mode", "live"])
        assert args.sampling_mode == "live"
        args = build_parser().parse_args(["campaign", "--sampling-mode", "live"])
        assert args.sampling_mode == "live"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["space", "--sampling-mode", "psychic"])


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("oltp", "barnes", "specjbb"):
            assert name in out

    def test_run_small(self, capsys):
        code = main(
            ["run", "--workload", "oltp", "--txns", "20", "--warmup", "10",
             "--cpus", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles per transaction" in out

    def test_space_small(self, capsys):
        code = main(
            ["space", "--workload", "oltp", "--txns", "20", "--warmup", "10",
             "--cpus", "4", "--runs", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CoV" in out
        assert out.count("seed") == 3

    def test_compare_small(self, capsys):
        code = main(
            ["compare", "--vary", "dram", "--a", "80", "--b", "200",
             "--workload", "oltp", "--txns", "40", "--warmup", "20",
             "--cpus", "4", "--runs", "4"]
        )
        out = capsys.readouterr().out
        assert "WCR" in out
        assert code in (0, 1)  # 1 == not significant, still a valid outcome

    def test_zero_perturbation_flag(self, capsys):
        code = main(
            ["space", "--workload", "oltp", "--txns", "20", "--warmup", "0",
             "--cpus", "4", "--runs", "2", "--perturbation", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CoV=0.00%" in out

    def test_space_live_sampling(self, capsys):
        code = main(
            ["space", "--workload", "oltp", "--txns", "32", "--warmup", "10",
             "--cpus", "2", "--runs", "2", "--sampling-mode", "live"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CoV" in out
        assert out.count("seed") == 2

    def test_space_json(self, capsys):
        code = main(
            ["space", "--workload", "oltp", "--txns", "20", "--warmup", "10",
             "--cpus", "4", "--runs", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload_name"] == "oltp"
        assert len(payload["results"]) == 2

    def test_compare_json(self, capsys):
        code = main(
            ["compare", "--vary", "dram", "--a", "80", "--b", "200",
             "--workload", "oltp", "--txns", "40", "--warmup", "20",
             "--cpus", "4", "--runs", "4", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert {"sample_a", "sample_b", "conclusion_is_safe"} <= payload.keys()
        assert code in (0, 1)


class TestCampaignCommand:
    def test_dry_run_prints_plan(self, tmp_path, capsys):
        code = main(
            ["campaign", "--workloads", "oltp", "--txns", "10", "--cpus", "4",
             "--runs", "3", "--store", str(tmp_path), "--dry-run"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 pending" in out

    def test_campaign_runs_then_resumes_from_store(self, tmp_path, capsys):
        argv = ["campaign", "--workloads", "oltp", "--txns", "10", "--cpus", "4",
                "--runs", "3", "--store", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "3 cached, 0 pending" in out

    def test_vary_without_values_errors(self, tmp_path, capsys):
        code = main(
            ["campaign", "--vary", "dram", "--store", str(tmp_path), "--dry-run"]
        )
        assert code == 2
        assert "--values" in capsys.readouterr().err
