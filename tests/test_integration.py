"""Integration tests: the full methodology on a small machine.

These exercise the paper's pipeline end-to-end -- perturbed multi-run
sampling, comparison experiments, checkpoint studies, ANOVA -- on a 4-CPU
system with short runs, asserting structure rather than exact values.
"""

import pytest

from repro.config import RunConfig, SystemConfig
from repro.core.anova import one_way_anova
from repro.core.experiment import compare_configurations
from repro.core.runner import run_space
from repro.core.sampling import checkpoint_study, windowed_cycles_per_transaction
from repro.core.wcr import wrong_conclusion_ratio
from repro.system.simulation import run_simulation
from repro.workloads.registry import make_workload

CONFIG = SystemConfig(n_cpus=4)


def small_oltp():
    return make_workload("oltp", threads_per_cpu=2)


class TestRunSpace:
    def test_sample_collected_in_seed_order(self, warm_checkpoint):
        sample = run_space(
            CONFIG,
            small_oltp(),
            RunConfig(measured_transactions=30, seed=50),
            n_runs=4,
            checkpoint=warm_checkpoint,
        )
        assert [r.seed for r in sample.results] == [50, 51, 52, 53]
        assert len(sample.values) == 4

    def test_explicit_seeds(self, warm_checkpoint):
        sample = run_space(
            CONFIG,
            small_oltp(),
            RunConfig(measured_transactions=20),
            n_runs=2,
            seeds=[7, 99],
            checkpoint=warm_checkpoint,
        )
        assert [r.seed for r in sample.results] == [7, 99]

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_space(
                CONFIG, small_oltp(), RunConfig(), n_runs=3, seeds=[1, 2]
            )

    def test_space_variability_nonzero(self, warm_checkpoint):
        sample = run_space(
            CONFIG,
            small_oltp(),
            RunConfig(measured_transactions=60, seed=10),
            n_runs=5,
            checkpoint=warm_checkpoint,
        )
        assert sample.summary().coefficient_of_variation > 0.0

    def test_parallel_jobs_match_serial(self, warm_checkpoint):
        kwargs = dict(
            config=CONFIG,
            workload=small_oltp(),
            run=RunConfig(measured_transactions=20, seed=31),
            n_runs=2,
            checkpoint=warm_checkpoint,
        )
        serial = run_space(**kwargs, n_jobs=1)
        parallel = run_space(**kwargs, n_jobs=2)
        assert serial.values == parallel.values


class TestComparison:
    def test_dram_latency_comparison(self, warm_checkpoint):
        """The methodology's flagship use: slower memory should lose once
        enough runs separate the configurations."""
        result = compare_configurations(
            CONFIG.with_dram_latency(80),
            CONFIG.with_dram_latency(160),  # exaggerated for a small test
            small_oltp(),
            RunConfig(measured_transactions=60, seed=20),
            n_runs=5,
            label_a="80ns",
            label_b="160ns",
            checkpoint=warm_checkpoint,
        )
        assert result.summary_a.mean < result.summary_b.mean
        assert result.faster == "80ns"
        assert 0.0 <= result.wcr_percent <= 100.0

    def test_identical_configs_have_high_wcr(self, warm_checkpoint):
        """Comparing a configuration against itself: the single-run wrong
        conclusion ratio should be large (the samples interleave)."""
        a = run_space(
            CONFIG,
            small_oltp(),
            RunConfig(measured_transactions=60, seed=300),
            n_runs=5,
            checkpoint=warm_checkpoint,
        )
        b = run_space(
            CONFIG,
            small_oltp(),
            RunConfig(measured_transactions=60, seed=400),
            n_runs=5,
            checkpoint=warm_checkpoint,
        )
        assert wrong_conclusion_ratio(a.values, b.values) > 10.0


class TestTimeVariability:
    def test_windowed_series_from_real_run(self, warm_checkpoint):
        result = run_simulation(
            CONFIG,
            small_oltp(),
            RunConfig(measured_transactions=60, seed=17),
            checkpoint=warm_checkpoint,
            collect_transaction_times=True,
        )
        series = windowed_cycles_per_transaction(result, window=10)
        # 60 completions make 6 windows; slice-skew can push a boundary
        # completion just outside the measurement window, costing one.
        assert len(series) in (5, 6)
        assert all(v > 0 for v in series)

    def test_checkpoint_study_and_anova(self):
        study = checkpoint_study(
            CONFIG,
            small_oltp(),
            checkpoint_transactions=[40, 120],
            run=RunConfig(measured_transactions=30, seed=60),
            n_runs=3,
        )
        assert len(study.groups) == 2
        assert all(len(group) == 3 for group in study.groups)
        result = one_way_anova(study.groups)
        assert result.df_between == 1
        assert result.df_within == 4
        assert study.between_checkpoint_spread_percent() >= 0.0


class TestCrossWorkload:
    @pytest.mark.parametrize("name", ["apache", "slashcode"])
    def test_other_commercial_workloads_run(self, name):
        workload = make_workload(name, threads_per_cpu=2)
        result = run_simulation(
            CONFIG, workload, RunConfig(measured_transactions=15, seed=2)
        )
        assert result.measured_transactions == 15

    def test_specjbb_runs(self):
        result = run_simulation(
            CONFIG, make_workload("specjbb"), RunConfig(measured_transactions=15, seed=2)
        )
        assert result.measured_transactions == 15

    def test_barnes_single_transaction(self):
        result = run_simulation(
            CONFIG, make_workload("barnes"), RunConfig(measured_transactions=1, seed=2)
        )
        assert result.measured_transactions == 1
