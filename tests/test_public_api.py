"""The public API surface: everything advertised must exist and import."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.sim",
    "repro.memory",
    "repro.proc",
    "repro.osmodel",
    "repro.workloads",
    "repro.system",
    "repro.realsys",
    "repro.core",
    "repro.analysis",
    "repro.cli",
]


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", SUBPACKAGES[:-1])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name, None) is not None, f"{module}.{name}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_names_exist(self):
        """The README quickstart's imports must stay valid."""
        from repro import (  # noqa: F401
            RunConfig,
            SystemConfig,
            compare_configurations,
            run_space,
        )

    def test_docstring_quickstart_names_exist(self):
        from repro import run_simulation, summarize, make_workload  # noqa: F401


class TestPublicDocstrings:
    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_modules_documented(self, module):
        assert importlib.import_module(module).__doc__

    def test_key_classes_documented(self):
        from repro import Machine, Checkpoint, SimulationResult, SystemConfig

        for item in (Machine, Checkpoint, SimulationResult, SystemConfig):
            assert item.__doc__
