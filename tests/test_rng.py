"""Tests for the deterministic random streams."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RandomStream, hash_u64, splitmix64, stream_seed

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSplitMix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    def test_known_nonzero(self):
        assert splitmix64(0) != 0

    @given(U64)
    def test_output_in_64_bits(self, state):
        assert 0 <= splitmix64(state) < (1 << 64)

    @given(U64, U64)
    def test_hash_u64_order_sensitive(self, a, b):
        if a != b:
            assert hash_u64(a, b) != hash_u64(b, a)


class TestStreamSeed:
    def test_scope_separation(self):
        assert stream_seed(1, "alpha") != stream_seed(1, "beta")

    def test_string_and_int_scopes(self):
        assert stream_seed(1, "x", 3) != stream_seed(1, "x", 4)

    def test_root_seed_matters(self):
        assert stream_seed(1, "x") != stream_seed(2, "x")

    def test_deterministic(self):
        assert stream_seed(42, "perturbation") == stream_seed(42, "perturbation")


class TestRandomStream:
    def test_same_seed_same_sequence(self):
        a = RandomStream(seed=7)
        b = RandomStream(seed=7)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = RandomStream(seed=7)
        b = RandomStream(seed=8)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_randint_bounds(self):
        stream = RandomStream(seed=1)
        values = [stream.randint(0, 4) for _ in range(500)]
        assert min(values) == 0
        assert max(values) == 4

    def test_randint_single_value(self):
        stream = RandomStream(seed=1)
        assert stream.randint(3, 3) == 3

    def test_randint_empty_range_raises(self):
        stream = RandomStream(seed=1)
        with pytest.raises(ValueError):
            stream.randint(5, 4)

    def test_random_unit_interval(self):
        stream = RandomStream(seed=2)
        values = [stream.random() for _ in range(500)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_randint_roughly_uniform(self):
        stream = RandomStream(seed=3)
        counts = [0] * 5
        for _ in range(5000):
            counts[stream.randint(0, 4)] += 1
        for count in counts:
            assert 800 < count < 1200

    def test_choice_index_weights(self):
        stream = RandomStream(seed=4)
        counts = [0, 0]
        for _ in range(2000):
            counts[stream.choice_index([9.0, 1.0])] += 1
        assert counts[0] > counts[1] * 4

    def test_choice_index_bad_weights(self):
        stream = RandomStream(seed=4)
        with pytest.raises(ValueError):
            stream.choice_index([0.0, 0.0])

    def test_exponential_mean(self):
        stream = RandomStream(seed=5)
        values = [stream.exponential(10.0) for _ in range(4000)]
        assert 9.0 < sum(values) / len(values) < 11.0

    def test_gaussian_moments(self):
        stream = RandomStream(seed=6)
        values = [stream.gaussian(5.0, 2.0) for _ in range(4000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert abs(mean - 5.0) < 0.2
        assert abs(math.sqrt(var) - 2.0) < 0.2

    def test_fork_independent(self):
        parent = RandomStream(seed=9)
        child_a = parent.fork("a")
        child_b = parent.fork("b")
        assert child_a.next_u64() != child_b.next_u64()

    def test_snapshot_restore_resumes(self):
        stream = RandomStream(seed=11)
        for _ in range(5):
            stream.next_u64()
        state = stream.snapshot()
        expected = [stream.next_u64() for _ in range(5)]
        resumed = RandomStream.restore(state)
        assert [resumed.next_u64() for _ in range(5)] == expected

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=100))
    def test_counter_draws_reproducible(self, seed, advance):
        a = RandomStream(seed=seed, counter=advance)
        b = RandomStream(seed=seed, counter=advance)
        assert a.next_u64() == b.next_u64()
