"""The CPU scheduler.

Models the scheduling behaviour the paper attributes variability to: each
CPU has a FIFO run queue and a scheduling quantum; ready threads prefer
their last CPU (affinity) but an idling CPU steals from the most loaded
queue.  Which thread a CPU picks therefore depends on *when* threads
become ready -- the timing-dependence that turns nanosecond perturbations
into divergent execution paths.

The scheduler also records the dispatch trace: one
:class:`ScheduleEvent` per decision, which is exactly the data plotted in
the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import OSConfig
from repro.osmodel.thread import SimThread, ThreadState


@dataclass(frozen=True)
class ScheduleEvent:
    """One scheduling decision (a point in Figure 1)."""

    time_ns: int
    cpu: int
    tid: int


class Scheduler:
    """Per-CPU run queues with affinity and idle stealing."""

    def __init__(self, config: OSConfig, n_cpus: int) -> None:
        self.config = config
        self.n_cpus = n_cpus
        self.run_queues: list[list[int]] = [[] for _ in range(n_cpus)]
        self.current: list[int | None] = [None] * n_cpus
        self.threads: dict[int, SimThread] = {}
        self.trace: list[ScheduleEvent] = []
        self.trace_enabled = False
        self.dispatches = 0
        self.migrations = 0
        #: probe-bus "sched" hook; None when no probe is attached
        self._probe = None

    def set_probe(self, callback) -> None:
        """Install (or clear, with None) the dispatch-decision probe.

        The callback fires as ``callback(now, cpu, tid)`` on every
        dispatch; it is None-checked on the dispatch path only, which is
        already dominated by queue manipulation.
        """
        self._probe = callback

    # ------------------------------------------------------------------
    # Thread registration
    # ------------------------------------------------------------------
    def add_thread(self, thread: SimThread) -> None:
        """Register a thread and place it on its preferred run queue."""
        if thread.tid in self.threads:
            raise ValueError(f"duplicate tid {thread.tid}")
        self.threads[thread.tid] = thread
        thread.state = ThreadState.READY
        self.run_queues[thread.last_cpu % self.n_cpus].append(thread.tid)

    # ------------------------------------------------------------------
    # Scheduling decisions
    # ------------------------------------------------------------------
    def make_ready(self, thread: SimThread) -> int:
        """Mark a thread runnable and enqueue it; returns the chosen CPU.

        The thread goes to its last CPU's queue (cache affinity).  If that
        CPU is busy with a deep queue while another CPU idles with an
        empty queue, it goes to the idle CPU instead (wake-up balancing).
        """
        thread.state = ThreadState.READY
        home = thread.last_cpu % self.n_cpus
        target = home
        if self.config.load_balance and (
            self.current[home] is not None or self.run_queues[home]
        ):
            for cpu in self._cpu_scan_order(home):
                if self.current[cpu] is None and not self.run_queues[cpu]:
                    target = cpu
                    break
        if target != home:
            self.migrations += 1
        self.run_queues[target].append(thread.tid)
        return target

    def _cpu_scan_order(self, home: int) -> list[int]:
        """Deterministic scan order starting after the home CPU."""
        return [(home + offset) % self.n_cpus for offset in range(1, self.n_cpus)]

    def pick_next(self, cpu: int, now: int) -> SimThread | None:
        """Dispatch the next thread on ``cpu`` (or steal), if any.

        Returns the chosen thread already marked RUNNING, or None when no
        work is available anywhere.
        """
        cpu %= self.n_cpus
        queue = self.run_queues[cpu]
        migrated = False
        if not queue and self.config.load_balance:
            victim = self._most_loaded_queue(cpu)
            # Steal only from a backlogged queue (>= 2 waiters): a lone
            # waiter is about to be picked up by its own (affinity-warm)
            # CPU, and stealing it would only shuffle cache state -- this
            # matters for one-thread-per-CPU scientific workloads, where
            # barrier releases would otherwise race the wakeups.
            if victim is not None and len(self.run_queues[victim]) >= 2:
                queue = self.run_queues[victim]
                migrated = True
        if not queue:
            self.current[cpu] = None
            return None
        tid = queue.pop(0)
        thread = self.threads[tid]
        if migrated:
            self.migrations += 1
        thread.state = ThreadState.RUNNING
        thread.last_cpu = cpu
        thread.quantum_deadline = now + self.config.quantum_ns
        self.current[cpu] = tid
        self.dispatches += 1
        if self.trace_enabled:
            self.trace.append(ScheduleEvent(time_ns=now, cpu=cpu, tid=tid))
        if self._probe is not None:
            self._probe(now, cpu, tid)
        return thread

    def _most_loaded_queue(self, thief: int) -> int | None:
        """Index of the longest non-empty run queue, deterministically."""
        best = None
        best_len = 0
        for cpu in self._cpu_scan_order(thief):
            length = len(self.run_queues[cpu])
            if length > best_len:
                best = cpu
                best_len = length
        return best

    def preempt(self, cpu: int, thread: SimThread) -> None:
        """Quantum expiry: move the running thread to its queue's tail."""
        cpu %= self.n_cpus
        if self.current[cpu] != thread.tid:
            raise ValueError(f"thread {thread.tid} is not running on cpu {cpu}")
        self.current[cpu] = None
        thread.state = ThreadState.READY
        thread.stats.context_switches += 1
        self.run_queues[cpu].append(thread.tid)

    def block(self, cpu: int, thread: SimThread, state: ThreadState) -> None:
        """The running thread blocks; the CPU becomes free to dispatch."""
        cpu %= self.n_cpus
        if self.current[cpu] != thread.tid:
            raise ValueError(f"thread {thread.tid} is not running on cpu {cpu}")
        self.current[cpu] = None
        thread.state = state
        thread.stats.context_switches += 1

    def runnable_count(self) -> int:
        """Ready threads across all queues (diagnostics)."""
        return sum(len(queue) for queue in self.run_queues)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpointable scheduler state (threads snapshot separately)."""
        return {
            "run_queues": [list(queue) for queue in self.run_queues],
            "current": list(self.current),
            "dispatches": self.dispatches,
            "migrations": self.migrations,
        }

    def restore_state(self, state: dict) -> None:
        """Restore from a :meth:`snapshot` value."""
        self.run_queues = [list(queue) for queue in state["run_queues"]]
        self.current = list(state["current"])
        self.dispatches = state["dispatches"]
        self.migrations = state["migrations"]
        self.trace = []
