"""Table-driven MOSI snooping coherence protocol.

The paper's memory simulator (Martin et al. [23, 24]) specifies coherence
protocols with transition tables including transient states.  This module
reproduces that style: the whole protocol is the :data:`TRANSITIONS` table,
a pure mapping from ``(state, event)`` to ``(next_state, actions)``.
Illegal combinations are absent from the table and raise
:class:`CoherenceError` when applied, so protocol bugs fail loudly.

States
------
Stable: **M** (modified, owned, exclusive), **O** (owned, shared, dirty),
**S** (shared, clean), **I** (invalid).

Transient: ``IS_D`` (load miss issued GetS, waiting for data), ``IM_D``
(store miss issued GetM, waiting for data), ``SM_D`` / ``OM_D`` (upgrade
issued GetM from S / O, waiting for acknowledgements), ``MI_A`` / ``OI_A``
(replacement issued PutM, waiting for writeback acknowledgement).

Events
------
Processor-side: ``LOAD``, ``STORE``, ``REPLACEMENT``.
Network-side: ``OWN_DATA`` (response to our request), ``OWN_ACK``
(invalidation acks complete), ``WB_ACK`` (writeback accepted),
``OTHER_GETS`` / ``OTHER_GETM`` (remote requests observed on the bus),
``OTHER_PUTM`` (remote writeback observed).

The timing engine (:mod:`repro.memory.hierarchy`) resolves a miss
atomically, but it drives every copy of the block through this table, so
the protocol logic itself is exactly what a fully-timed implementation
would execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MOSIState(str, Enum):
    """Stable and transient coherence states.

    The enum carries the union of states across the supported protocols
    (MOSI, MESI, MOESI); each protocol's transition table uses its own
    subset.  The name is historical -- MOSI is the paper's protocol and
    the default.
    """

    M = "M"
    O = "O"  # noqa: E741 - standard protocol state name
    E = "E"
    S = "S"
    I = "I"  # noqa: E741 - standard protocol state name
    IS_D = "IS_D"
    IM_D = "IM_D"
    SM_D = "SM_D"
    OM_D = "OM_D"
    MI_A = "MI_A"
    OI_A = "OI_A"


#: alias: the enum covers every supported protocol, not only MOSI
ProtocolState = MOSIState


class ProtocolEvent(str, Enum):
    """Events a cache controller can observe for a block."""

    LOAD = "LOAD"
    STORE = "STORE"
    REPLACEMENT = "REPLACEMENT"
    OWN_DATA = "OWN_DATA"
    OWN_DATA_EXCL = "OWN_DATA_EXCL"
    OWN_ACK = "OWN_ACK"
    WB_ACK = "WB_ACK"
    OTHER_GETS = "OTHER_GETS"
    OTHER_GETM = "OTHER_GETM"
    OTHER_PUTM = "OTHER_PUTM"


class CoherenceError(Exception):
    """Raised when an event is applied in a state that cannot handle it."""


@dataclass(frozen=True)
class Transition:
    """One protocol transition: the next state plus controller actions.

    Actions are symbolic strings interpreted by the timing engine:

    - ``hit``: complete the processor request locally.
    - ``issue_gets`` / ``issue_getm`` / ``issue_putm``: put a request on
      the interconnect.
    - ``send_data``: supply the block to the requestor (cache-to-cache).
    - ``send_data_to_memory``: supply data and fall back to memory
      ownership (final writeback on OTHER_GETM from O/M is folded into the
      data transfer).
    - ``writeback``: write the dirty block to memory.
    - ``fill``: install the arriving data and complete the request.
    - ``deallocate``: drop the line from the cache array.
    """

    next_state: MOSIState
    actions: tuple[str, ...] = ()


_S = MOSIState
_E = ProtocolEvent

# The protocol table.  Absent (state, event) pairs are illegal.
TRANSITIONS: dict[tuple[MOSIState, ProtocolEvent], Transition] = {
    # ---- Invalid -------------------------------------------------------
    (_S.I, _E.LOAD): Transition(_S.IS_D, ("issue_gets",)),
    (_S.I, _E.STORE): Transition(_S.IM_D, ("issue_getm",)),
    (_S.I, _E.OTHER_GETS): Transition(_S.I),
    (_S.I, _E.OTHER_GETM): Transition(_S.I),
    (_S.I, _E.OTHER_PUTM): Transition(_S.I),
    # ---- Shared --------------------------------------------------------
    (_S.S, _E.LOAD): Transition(_S.S, ("hit",)),
    (_S.S, _E.STORE): Transition(_S.SM_D, ("issue_getm",)),
    (_S.S, _E.REPLACEMENT): Transition(_S.I, ("deallocate",)),
    (_S.S, _E.OTHER_GETS): Transition(_S.S),
    (_S.S, _E.OTHER_GETM): Transition(_S.I, ("deallocate",)),
    (_S.S, _E.OTHER_PUTM): Transition(_S.S),
    # ---- Owned ---------------------------------------------------------
    (_S.O, _E.LOAD): Transition(_S.O, ("hit",)),
    (_S.O, _E.STORE): Transition(_S.OM_D, ("issue_getm",)),
    (_S.O, _E.REPLACEMENT): Transition(_S.OI_A, ("issue_putm",)),
    (_S.O, _E.OTHER_GETS): Transition(_S.O, ("send_data",)),
    (_S.O, _E.OTHER_GETM): Transition(_S.I, ("send_data", "deallocate")),
    # ---- Modified ------------------------------------------------------
    (_S.M, _E.LOAD): Transition(_S.M, ("hit",)),
    (_S.M, _E.STORE): Transition(_S.M, ("hit",)),
    (_S.M, _E.REPLACEMENT): Transition(_S.MI_A, ("issue_putm",)),
    (_S.M, _E.OTHER_GETS): Transition(_S.O, ("send_data",)),
    (_S.M, _E.OTHER_GETM): Transition(_S.I, ("send_data", "deallocate")),
    # ---- Transient: waiting for data -----------------------------------
    (_S.IS_D, _E.OWN_DATA): Transition(_S.S, ("fill", "hit")),
    (_S.IM_D, _E.OWN_DATA): Transition(_S.M, ("fill", "hit")),
    (_S.SM_D, _E.OWN_ACK): Transition(_S.M, ("hit",)),
    (_S.OM_D, _E.OWN_ACK): Transition(_S.M, ("hit",)),
    # A racing remote GetM can strip an upgrader back to a full miss.
    (_S.SM_D, _E.OTHER_GETM): Transition(_S.IM_D),
    (_S.OM_D, _E.OTHER_GETM): Transition(_S.IM_D, ("send_data",)),
    (_S.OM_D, _E.OTHER_GETS): Transition(_S.OM_D, ("send_data",)),
    # ---- Transient: waiting for writeback acknowledgement ---------------
    (_S.MI_A, _E.WB_ACK): Transition(_S.I, ("writeback", "deallocate")),
    (_S.OI_A, _E.WB_ACK): Transition(_S.I, ("writeback", "deallocate")),
    (_S.MI_A, _E.OTHER_GETS): Transition(_S.OI_A, ("send_data",)),
    (_S.MI_A, _E.OTHER_GETM): Transition(_S.OI_A, ("send_data",)),
    (_S.OI_A, _E.OTHER_GETS): Transition(_S.OI_A, ("send_data",)),
    (_S.OI_A, _E.OTHER_GETM): Transition(_S.OI_A, ("send_data",)),
}

STABLE_STATES = (MOSIState.M, MOSIState.O, MOSIState.S, MOSIState.I)
OWNER_STATES = (MOSIState.M, MOSIState.O)

# ---------------------------------------------------------------------------
# Protocol variants (the Multifacet-style table-driven methodology: a
# protocol IS its table).  MESI replaces the Owned state with an
# Exclusive state: a read miss with no other sharers installs E, a store
# to E upgrades silently (no bus traffic), and a demoted M writes back to
# memory because nobody retains ownership.  MOESI has both E and O.
# ---------------------------------------------------------------------------

_E_TRANSITIONS: dict[tuple[MOSIState, ProtocolEvent], Transition] = {
    # Exclusive: clean, sole copy.  Stores upgrade silently.
    (_S.E, _E.LOAD): Transition(_S.E, ("hit",)),
    (_S.E, _E.STORE): Transition(_S.M, ("hit",)),
    (_S.E, _E.REPLACEMENT): Transition(_S.I, ("deallocate",)),
    (_S.E, _E.OTHER_GETS): Transition(_S.S, ("send_data",)),
    (_S.E, _E.OTHER_GETM): Transition(_S.I, ("send_data", "deallocate")),
    (_S.E, _E.OTHER_PUTM): Transition(_S.E),
    # A load miss answered with exclusive data installs E.
    (_S.IS_D, _E.OWN_DATA_EXCL): Transition(_S.E, ("fill", "hit")),
}

MESI_TRANSITIONS: dict[tuple[MOSIState, ProtocolEvent], Transition] = {
    **{
        key: transition
        for key, transition in TRANSITIONS.items()
        if key[0] not in (_S.O, _S.OM_D, _S.OI_A)
        and transition.next_state not in (_S.O, _S.OM_D, _S.OI_A)
    },
    **_E_TRANSITIONS,
    # Without an Owned state, a read-shared M copy must write back: the
    # data's home reverts to memory.
    (_S.M, _E.OTHER_GETS): Transition(_S.S, ("send_data", "writeback")),
    # During a writeback race the MI_A line still supplies data.
    (_S.MI_A, _E.OTHER_GETS): Transition(_S.MI_A, ("send_data",)),
    (_S.MI_A, _E.OTHER_GETM): Transition(_S.MI_A, ("send_data",)),
}

MOESI_TRANSITIONS: dict[tuple[MOSIState, ProtocolEvent], Transition] = {
    **TRANSITIONS,
    **_E_TRANSITIONS,
}

_PROTOCOLS: dict[str, dict[tuple[MOSIState, ProtocolEvent], Transition]] = {
    "mosi": TRANSITIONS,
    "mesi": MESI_TRANSITIONS,
    "moesi": MOESI_TRANSITIONS,
}

#: states whose holder supplies data on a remote request, per protocol
PROTOCOL_OWNER_STATES: dict[str, tuple[MOSIState, ...]] = {
    "mosi": (MOSIState.M, MOSIState.O),
    "mesi": (MOSIState.M, MOSIState.E),
    "moesi": (MOSIState.M, MOSIState.O, MOSIState.E),
}

#: whether a read miss with no sharers installs Exclusive
PROTOCOL_HAS_E: dict[str, bool] = {"mosi": False, "mesi": True, "moesi": True}


# ---------------------------------------------------------------------------
# Integer-coded protocol layer
#
# The enum tables above are the *specification*: readable, validated, and
# exactly the Multifacet table style.  The timing engine's miss legs run at
# simulation rates, where enum identity hashes and string-scanned action
# tuples are measurable (the same reasoning that moved the op ISA to
# integer opcodes).  This layer derives, from the very same tables, a flat
# integer encoding:
#
# - every state (plus the two L1 permission tags, which share the code
#   space so cache snapshots decode uniformly) gets a small int code;
# - every event gets a small int code;
# - actions become bit flags, so "is this action present" is one AND
#   instead of a tuple scan;
# - a protocol becomes a flat list indexed ``state_code * N_EVENTS +
#   event_code`` holding ``(action_flags, next_state_code)`` or ``None``
#   for illegal pairs.
#
# Because the int tables are *derived* from the enum tables at import
# time, they cannot drift; tests/test_int_tables.py additionally pins the
# equivalence transition-for-transition under hypothesis.
# ---------------------------------------------------------------------------

#: code -> canonical name.  Coherence states first (stable, then
#: transient), then the L1 permission tags RO/RW (repro.memory.hierarchy);
#: the L1s are not coherence points but their lines live in the same
#: CacheLine code space.
STATE_NAMES: tuple[str, ...] = (
    "I", "S", "E", "O", "M",
    "IS_D", "IM_D", "SM_D", "OM_D", "MI_A", "OI_A",
    "RO", "RW",
)
(
    ST_I, ST_S, ST_E, ST_O, ST_M,
    ST_IS_D, ST_IM_D, ST_SM_D, ST_OM_D, ST_MI_A, ST_OI_A,
    ST_RO, ST_RW,
) = range(13)

#: name -> code (accepts every STATE_NAMES entry, including RO/RW)
STATE_CODES: dict[str, int] = {name: code for code, name in enumerate(STATE_NAMES)}

#: number of *coherence* states (rows of the flat tables; RO/RW excluded)
N_COHERENCE_STATES = 11

#: event codes, in ProtocolEvent declaration order
(
    EV_LOAD, EV_STORE, EV_REPLACEMENT, EV_OWN_DATA, EV_OWN_DATA_EXCL,
    EV_OWN_ACK, EV_WB_ACK, EV_OTHER_GETS, EV_OTHER_GETM, EV_OTHER_PUTM,
) = range(10)
N_EVENTS = 10

EVENT_CODES: dict[ProtocolEvent, int] = {
    event: code for code, event in enumerate(ProtocolEvent)
}
EVENT_NAMES: tuple[str, ...] = tuple(event.value for event in ProtocolEvent)

#: action bit flags (one bit per symbolic action string)
ACT_HIT = 1
ACT_ISSUE_GETS = 2
ACT_ISSUE_GETM = 4
ACT_ISSUE_PUTM = 8
ACT_SEND_DATA = 16
ACT_WRITEBACK = 32
ACT_FILL = 64
ACT_DEALLOCATE = 128

ACTION_FLAGS: dict[str, int] = {
    "hit": ACT_HIT,
    "issue_gets": ACT_ISSUE_GETS,
    "issue_getm": ACT_ISSUE_GETM,
    "issue_putm": ACT_ISSUE_PUTM,
    "send_data": ACT_SEND_DATA,
    "writeback": ACT_WRITEBACK,
    "fill": ACT_FILL,
    "deallocate": ACT_DEALLOCATE,
}

#: bitmask of states a load can complete from locally (is_readable)
READABLE_MASK = (1 << ST_S) | (1 << ST_E) | (1 << ST_O) | (1 << ST_M)
#: bitmask of states a store can complete from locally (is_writable)
WRITABLE_MASK = (1 << ST_M) | (1 << ST_E)

#: per-protocol bitmask of owner states (holder supplies data on a miss)
PROTOCOL_OWNER_MASKS: dict[str, int] = {
    name: sum(1 << STATE_CODES[state.value] for state in states)
    for name, states in PROTOCOL_OWNER_STATES.items()
}


def encode_actions(actions: tuple[str, ...]) -> int:
    """Fold a symbolic action tuple into its bit-flag word."""
    flags = 0
    for action in actions:
        flags |= ACTION_FLAGS[action]
    return flags


def int_table_for(protocol: str) -> list[tuple[int, int] | None]:
    """The flat integer transition table of a protocol.

    ``table[state_code * N_EVENTS + event_code]`` is ``(action_flags,
    next_state_code)``, or ``None`` when the pair is illegal.  Derived
    from :func:`transitions_for`, so it encodes exactly the enum table.
    """
    enum_table = transitions_for(protocol)
    flat: list[tuple[int, int] | None] = [None] * (N_COHERENCE_STATES * N_EVENTS)
    for (state, event), transition in enum_table.items():
        index = STATE_CODES[state.value] * N_EVENTS + EVENT_CODES[event]
        flat[index] = (
            encode_actions(transition.actions),
            STATE_CODES[transition.next_state.value],
        )
    return flat


def event_column(flat: list, event_code: int) -> list[tuple[int, int] | None]:
    """One event's column of a flat table, indexed directly by state code.

    Padded to the full CacheLine code space (RO/RW rows are ``None``) so
    an L1 tag reaching a coherence lookup indexes cleanly into an
    illegal-transition error instead of an IndexError.
    """
    column = [flat[state * N_EVENTS + event_code] for state in range(N_COHERENCE_STATES)]
    column += [None] * (len(STATE_NAMES) - N_COHERENCE_STATES)
    return column


def illegal_transition(state_code: int, event_code: int) -> CoherenceError:
    """A CoherenceError naming an illegal (state, event) pair by name."""
    return CoherenceError(
        f"illegal event {EVENT_NAMES[event_code]} in state {STATE_NAMES[state_code]}"
    )


def available_protocols() -> list[str]:
    """Names of the supported coherence protocols."""
    return sorted(_PROTOCOLS)


def transitions_for(protocol: str) -> dict[tuple[MOSIState, ProtocolEvent], Transition]:
    """The transition table of a protocol by name."""
    table = _PROTOCOLS.get(protocol)
    if table is None:
        raise ValueError(
            f"unknown coherence protocol {protocol!r}; "
            f"available: {', '.join(available_protocols())}"
        )
    return table


def apply_event(
    state: MOSIState,
    event: ProtocolEvent,
    table: dict[tuple[MOSIState, ProtocolEvent], Transition] | None = None,
) -> Transition:
    """Look up the transition for (state, event) or raise CoherenceError."""
    transition = (table if table is not None else TRANSITIONS).get((state, event))
    if transition is None:
        raise CoherenceError(f"illegal event {event.value} in state {state.value}")
    return transition


def is_writable(state: MOSIState) -> bool:
    """Whether a store can complete locally without a coherence request.

    E is writable in the silent-upgrade sense: the store completes with a
    local state change and no interconnect transaction.
    """
    return state in (MOSIState.M, MOSIState.E)


def is_readable(state: MOSIState) -> bool:
    """Whether a load can complete locally without a coherence request."""
    return state in (MOSIState.M, MOSIState.O, MOSIState.E, MOSIState.S)


def validate_table(
    table: dict[tuple[MOSIState, ProtocolEvent], Transition] | None = None,
) -> list[str]:
    """Check structural invariants of a protocol table.

    Returns a list of human-readable problems (empty when the table is
    sound).  Used by unit tests; keeping it here documents the invariants
    next to the tables themselves.
    """
    table = table if table is not None else TRANSITIONS
    all_stable = STABLE_STATES + (MOSIState.E,)
    stable_states = tuple(
        state for state in all_stable if any(key[0] is state for key in table)
    )
    problems: list[str] = []
    for (state, event), transition in table.items():
        if "hit" in transition.actions and transition.next_state not in all_stable:
            problems.append(
                f"({state.value}, {event.value}) completes a request but lands in "
                f"transient state {transition.next_state.value}"
            )
        if "deallocate" in transition.actions and transition.next_state is not MOSIState.I:
            problems.append(
                f"({state.value}, {event.value}) deallocates but next state is "
                f"{transition.next_state.value}"
            )
    # Every stable state must handle all remote events it can observe.
    for state in stable_states:
        for event in (ProtocolEvent.OTHER_GETS, ProtocolEvent.OTHER_GETM):
            if (state, event) not in table:
                problems.append(f"stable state {state.value} ignores {event.value}")
    return problems
