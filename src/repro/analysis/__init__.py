"""Reporting helpers used by the benchmark harness.

The harness prints the paper's tables and figure series as text;
:mod:`repro.analysis.tables` renders aligned tables and
:mod:`repro.analysis.series` holds figure data (x values plus per-series
mean/min/max/error-bar columns) with a text renderer.
"""

from repro.analysis.ascii import bar_chart, error_bar_row, sample_chart
from repro.analysis.series import FigureSeries, summary_series
from repro.analysis.tables import format_table

__all__ = [
    "bar_chart",
    "error_bar_row",
    "sample_chart",
    "FigureSeries",
    "summary_series",
    "format_table",
]
