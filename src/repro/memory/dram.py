"""DRAM / memory-controller model.

The target distributes 2 GB of shared memory across the nodes, each node's
integrated memory controller owning a slice (paper 3.2.1).  A block's home
controller is determined by address interleaving.  Access latency is the
configured DRAM latency (80 ns by default; Figure 4 sweeps 80-90 ns) plus
queueing when a controller receives back-to-back requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MemoryConfig


@dataclass(slots=True)
class DramStats:
    """Request counters for all memory controllers."""

    reads: int = 0
    writebacks: int = 0
    total_queue_ns: int = 0


class MemoryController:
    """All per-node memory controllers, indexed by block home.

    Queueing uses the same windowed-occupancy model as the crossbar (see
    :class:`repro.memory.interconnect.Crossbar`): requests to one
    controller within the same window queue behind each other, which is
    insensitive to slice-granularity timestamp skew between CPUs.
    """

    #: time one request occupies a controller (bank busy time)
    OCCUPANCY_NS = 10
    #: contention accounting window
    WINDOW_NS = 400

    def __init__(self, config: MemoryConfig, n_nodes: int) -> None:
        self.config = config
        self.n_nodes = n_nodes
        self.stats = DramStats()
        self._window_start = [0] * n_nodes
        self._window_count = [0] * n_nodes

    def home_of(self, block: int) -> int:
        """Return the node whose controller owns ``block``."""
        return block % self.n_nodes

    def _queue_ns(self, home: int, now: int) -> int:
        window = now // self.WINDOW_NS
        if window != self._window_start[home]:
            self._window_start[home] = window
            self._window_count[home] = 0
        queue_ns = self._window_count[home] * self.OCCUPANCY_NS
        self._window_count[home] += 1
        return queue_ns

    def read(self, block: int, now: int) -> int:
        """Latency for the home controller to provide ``block`` at ``now``.

        ``_queue_ns`` is inlined: this runs once per memory fetch.
        """
        home = block % self.n_nodes
        window = now // self.WINDOW_NS
        if window != self._window_start[home]:
            self._window_start[home] = window
            self._window_count[home] = 0
        queue_ns = self._window_count[home] * self.OCCUPANCY_NS
        self._window_count[home] += 1
        stats = self.stats
        stats.reads += 1
        stats.total_queue_ns += queue_ns
        return queue_ns + self.config.dram_latency_ns

    def writeback(self, block: int, now: int) -> None:
        """Accept a writeback; occupies the controller but is off the
        critical path (the evicting cache does not wait for DRAM)."""
        self._queue_ns(self.home_of(block), now)
        self.stats.writebacks += 1

    def snapshot(self) -> dict:
        """Return the checkpointable controller state."""
        return {
            "window": (list(self._window_start), list(self._window_count)),
            "stats": (self.stats.reads, self.stats.writebacks, self.stats.total_queue_ns),
        }

    def restore_state(self, state: dict) -> None:
        """Restore from a :meth:`snapshot` value."""
        self._window_start, self._window_count = (
            list(state["window"][0]),
            list(state["window"][1]),
        )
        reads, writebacks, total_queue = state["stats"]
        self.stats = DramStats(
            reads=reads, writebacks=writebacks, total_queue_ns=total_queue
        )
